#ifndef POL_CORE_INVENTORY_BUILDER_H_
#define POL_CORE_INVENTORY_BUILDER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"
#include "core/extractor.h"
#include "core/inventory.h"
#include "flow/stage.h"

// Incremental inventory construction — the terminal stage of the
// pipeline graph. The builder owns the growing SummaryMap; each Fold
// call aggregates one chunk of projected records into it (map phase
// parallel over the chunk's partitions, reduce phase folded in
// ascending partition order), and Finish seals the result into an
// Inventory.
//
// Determinism contract: folding chunks in ascending chunk order is
// bit-identical to a single Fold over the union of the chunks, as long
// as the chunks are a partition-ordered split of one global vessel
// partitioning (SplitReportsByVessel + the stage chain produce exactly
// that). This is what makes chunked builds reproduce the single-shot
// serialized inventory byte for byte, and lets new data batches fold
// into an existing build without reprocessing the archive.

namespace pol::core {

class InventoryBuilder {
 public:
  explicit InventoryBuilder(const ExtractorConfig& config)
      : config_(config) {
    metrics_.name = "extraction";
  }

  // Aggregates one chunk of projected records (ProjectToGrid output)
  // into the summaries. Call in ascending chunk order; Fold itself is
  // sequential (the caller serializes chunk results — see StageRunner),
  // but each call parallelizes its map phase over the chunk's
  // partitions.
  void Fold(const flow::Dataset<PipelineRecord>& projected);

  // Records aggregated so far across all folds.
  uint64_t records_folded() const { return records_; }

  // Summaries built so far.
  size_t size() const { return summaries_.size(); }

  // Per-stage metrics of the extraction stage (records in = folded
  // records, records out = summaries, wall time summed over folds).
  const flow::StageMetrics& metrics() const { return metrics_; }

  // Serializes the in-progress build (summaries + fold accounting) so a
  // checkpoint can resume it. Same canonical key order as
  // Inventory::SerializeTo; framing (magic/CRC) is the caller's job —
  // see core/checkpoint.h. Note: summary serialization flushes t-digest
  // buffers, which mutates equivalent internal state of the live
  // summaries; resumed and uninterrupted runs therefore only compare
  // byte-identical when both use the same checkpoint schedule.
  void SerializeState(std::string* out) const;

  // Restores a build serialized by SerializeState into this (fresh)
  // builder. Fails with Corruption on malformed input and
  // FailedPrecondition on a resolution mismatch with the config.
  Status RestoreState(std::string_view input);

  // Seals the build. The builder is consumed.
  Inventory Finish() && {
    return Inventory(config_.resolution, std::move(summaries_));
  }

  // As Finish, but hands back the raw map (ExtractFeatures compat).
  SummaryMap TakeSummaries() && { return std::move(summaries_); }

 private:
  ExtractorConfig config_;
  SummaryMap summaries_;
  uint64_t records_ = 0;
  flow::StageMetrics metrics_;
};

}  // namespace pol::core

#endif  // POL_CORE_INVENTORY_BUILDER_H_
