#include "core/serving_guard.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/serving_metric_names.h"
#include "obs/clock.h"
#include "obs/openmetrics.h"
#include "obs/trace.h"

namespace pol::core {
namespace {

int64_t MillisGauge(double seconds) {
  double millis = seconds * 1000.0;
  if (!(millis >= 0.0)) millis = 0.0;
  if (millis > 9e15) millis = 9e15;
  return static_cast<int64_t>(std::llround(millis));
}

}  // namespace

std::string_view BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

ServingGuard::ServingGuard(ServingInventory* store, ServingGuardOptions options)
    : store_(store),
      options_(std::move(options)),
      telemetry_(std::make_unique<ServingTelemetry>(options_.telemetry)) {
  POL_CHECK(store_ != nullptr);
  POL_CHECK(options_.max_concurrent_interactive >= 1);
  POL_CHECK(options_.max_concurrent_batch >= 1);
  POL_CHECK(options_.max_queue_wait_seconds >= 0.0);
  POL_CHECK(options_.breaker_trip_failures >= 1);
  POL_CHECK(options_.breaker_open_seconds >= 0.0);
  POL_CHECK(options_.deadline_check_stride >= 1);
  POL_CHECK((options_.deadline_check_stride &
             (options_.deadline_check_stride - 1)) == 0);
  classes_[static_cast<size_t>(QueryClass::kInteractive)].limit =
      options_.max_concurrent_interactive;
  classes_[static_cast<size_t>(QueryClass::kBatch)].limit =
      options_.max_concurrent_batch;

  auto& registry = obs::Registry::Global();
  admitted_ = registry.counter(kMetricServingAdmitted);
  queued_ = registry.counter(kMetricServingQueued);
  shed_ = registry.counter(kMetricServingShed);
  deadline_exceeded_ = registry.counter(kMetricServingDeadlineExceeded);
  scan_deadline_exceeded_ =
      registry.counter(kMetricServingScanDeadlineExceeded);
  breaker_trips_ = registry.counter(kMetricServingBreakerTrips);
  breaker_probes_ = registry.counter(kMetricServingBreakerProbes);
  breaker_closes_ = registry.counter(kMetricServingBreakerCloses);
  breaker_rejected_ = registry.counter(kMetricServingBreakerRejected);
  degraded_gauge_ = registry.gauge(kMetricServingDegraded);
  breaker_state_gauge_ = registry.gauge(kMetricServingBreakerState);
  age_gauge_ = registry.gauge(kMetricServingSnapshotAgeRefreshes);
  telemetry_exports_ = registry.counter(kMetricServingTelemetryExports);
  telemetry_export_failures_ =
      registry.counter(kMetricServingTelemetryExportFailures);
  active_snapshot_id_gauge_ = registry.gauge(kMetricServingActiveSnapshotId);
  snapshot_age_ms_gauge_ = registry.gauge(kMetricServingSnapshotAgeMs);
  degraded_gauge_->Set(0);
  breaker_state_gauge_->Set(0);
  age_gauge_->Set(0);
}

ServingGuard::~ServingGuard() { StopTelemetryExporter(); }

std::string ServingGuard::QuerySpanName(std::string_view op, uint64_t id) {
  std::string name;
  name.reserve(kSpanServingQueryPrefix.size() + op.size() + 21);
  name.append(kSpanServingQueryPrefix);
  name.append(op);
  name.push_back('#');
  name.append(std::to_string(id));
  return name;
}

Status ServingGuard::Admit(QueryClass cls, const Deadline& deadline,
                           double* queue_wait_seconds) {
  ClassState& state = classes_[static_cast<size_t>(cls)];
  if (deadline.Expired()) {
    deadline_exceeded_->Increment();
    return Status::DeadlineExceeded("query deadline expired before admission");
  }
  // Optimistic fast path: claim a slot, keep it if the class was below
  // its limit. The transient overshoot is visible only to other
  // admitters (who fall into the same slow path), never as extra
  // concurrency.
  const int prev = state.in_flight.fetch_add(1, std::memory_order_acq_rel);
  if (prev < state.limit) {
    admitted_->Increment();
    return Status::OK();
  }
  state.in_flight.fetch_sub(1, std::memory_order_seq_cst);
  return AdmitSlow(state, deadline, queue_wait_seconds);
}

Status ServingGuard::AdmitSlow(ClassState& state, const Deadline& deadline,
                               double* queue_wait_seconds) {
  queued_->Increment();
  const double queued_at = obs::NowSeconds();
  const double queue_deadline = queued_at + options_.max_queue_wait_seconds;
  MutexLock lock(mutex_);
  // Missed-wakeup argument: `waiters` is published seq_cst before the
  // final in_flight re-check below, and Release decrements in_flight
  // seq_cst before reading `waiters`. So either Release sees our waiter
  // registration and takes the mutex to NotifyAll (which cannot run
  // until we are parked in WaitFor, since we hold the mutex), or our
  // re-check sees its decrement and we claim the slot without waiting.
  state.waiters.fetch_add(1, std::memory_order_seq_cst);
  Status result;  // OK = admitted.
  for (;;) {
    int current = state.in_flight.load(std::memory_order_seq_cst);
    if (current < state.limit) {
      if (state.in_flight.compare_exchange_strong(
              current, current + 1, std::memory_order_acq_rel)) {
        admitted_->Increment();
        break;
      }
      continue;  // Lost the CAS race; re-read and retry immediately.
    }
    const double now = obs::NowSeconds();
    if (deadline.ExpiredAt(now)) {
      deadline_exceeded_->Increment();
      result = Status::DeadlineExceeded(
          "query deadline expired while queued for admission");
      break;
    }
    if (now >= queue_deadline) {
      shed_->Increment();
      result = Status::ResourceExhausted(
          "admission queue wait exhausted; load shed");
      break;
    }
    // Sleep until a Release, but never past the queue budget or the
    // caller's deadline (spurious wakeups just re-run the loop).
    const double wait_until = std::min(queue_deadline, deadline.at_seconds());
    slot_available_.WaitFor(mutex_, wait_until - now);
  }
  state.waiters.fetch_sub(1, std::memory_order_seq_cst);
  if (queue_wait_seconds != nullptr) {
    *queue_wait_seconds = obs::NowSeconds() - queued_at;
  }
  return result;
}

void ServingGuard::Release(QueryClass cls) {
  ClassState& state = classes_[static_cast<size_t>(cls)];
  state.in_flight.fetch_sub(1, std::memory_order_seq_cst);
  if (state.waiters.load(std::memory_order_seq_cst) > 0) {
    // Taking the mutex before notifying closes the race against a
    // waiter that registered but has not parked yet; NotifyAll because
    // waiters of both classes share the one condition variable.
    MutexLock lock(mutex_);
    slot_available_.NotifyAll();
  }
}

Status ServingGuard::VisitGroupingSet(GroupingSet set, const Deadline& deadline,
                                      const InventoryQuery::SummaryVisitor& visitor,
                                      QueryClass cls) {
  uint64_t visited = 0;
  return RunCounted(
      "visit_grouping_set", cls, deadline, &visited,
      [&](const InventorySnapshot& snapshot) {
        const uint32_t stride_mask = options_.deadline_check_stride - 1;
        bool expired = false;
        snapshot.VisitGroupingSetWhile(
            set, [&](const GroupKey& key, const CellSummary& summary) {
              if ((static_cast<uint32_t>(visited++) & stride_mask) == 0 &&
                  deadline.Expired()) {
                expired = true;
                return false;
              }
              visitor(key, summary);
              return true;
            });
        if (expired) {
          return Status::DeadlineExceeded(
              "grouping-set sweep canceled: deadline exceeded mid-scan");
        }
        return Status::OK();
      });
}

Result<std::vector<hex::CellIndex>> ServingGuard::CellsForRoute(
    sim::PortId origin, sim::PortId destination, ais::MarketSegment segment,
    const Deadline& deadline, QueryClass cls) {
  std::vector<hex::CellIndex> cells;
  uint64_t visited = 0;
  Status status = RunCounted(
      "cells_for_route", cls, deadline, &visited,
      [&](const InventorySnapshot& snapshot) {
        cells = snapshot.CellsForRoute(origin, destination, segment);
        visited = cells.size();
        // The index lookup is O(log routes); the corridor copy above is
        // the long part, so the cooperative check lands after it.
        if (deadline.Expired()) {
          cells.clear();
          visited = 0;
          return Status::DeadlineExceeded(
              "route corridor query canceled: deadline exceeded");
        }
        return Status::OK();
      });
  if (!status.ok()) return status;
  return cells;
}

Status ServingGuard::Refresh(Inventory&& delta) {
  POL_TRACE_SPAN(kSpanServingGuardRefresh);
  bool probing = false;
  {
    MutexLock lock(mutex_);
    if (breaker_state_ == BreakerState::kOpen) {
      const double now = obs::NowSeconds();
      if (now - opened_at_seconds_ < options_.breaker_open_seconds) {
        ++snapshot_age_refreshes_;
        age_gauge_->Set(static_cast<int64_t>(snapshot_age_refreshes_));
        breaker_rejected_->Increment();
        return Status::Unavailable(
            "refresh breaker open; serving last good snapshot");
      }
      breaker_state_ = BreakerState::kHalfOpen;
      breaker_state_gauge_->Set(
          static_cast<int64_t>(BreakerState::kHalfOpen));
    }
    if (breaker_state_ == BreakerState::kHalfOpen) {
      if (probe_in_flight_) {
        ++snapshot_age_refreshes_;
        age_gauge_->Set(static_cast<int64_t>(snapshot_age_refreshes_));
        breaker_rejected_->Increment();
        return Status::Unavailable(
            "refresh breaker half-open; a probe is already in flight");
      }
      probe_in_flight_ = true;
      probing = true;
      breaker_probes_->Increment();
    }
  }

  // The store refresh (merge + seal + swap) runs outside mutex_ so the
  // breaker bookkeeping never blocks behind a slow seal — readers and
  // admission keep moving while the refresh is in flight.
  const Status status = store_->Refresh(std::move(delta));

  MutexLock lock(mutex_);
  if (probing) probe_in_flight_ = false;
  if (status.ok()) {
    consecutive_failures_ = 0;
    snapshot_age_refreshes_ = 0;
    if (breaker_state_ != BreakerState::kClosed) {
      breaker_closes_->Increment();
    }
    breaker_state_ = BreakerState::kClosed;
    breaker_state_gauge_->Set(static_cast<int64_t>(BreakerState::kClosed));
    degraded_gauge_->Set(0);
  } else {
    ++snapshot_age_refreshes_;
    if (status.IsRetryable()) {
      ++consecutive_failures_;
      // A failed half-open probe re-opens immediately; a closed breaker
      // waits for the configured run of consecutive failures.
      if (probing ||
          consecutive_failures_ >= options_.breaker_trip_failures) {
        breaker_state_ = BreakerState::kOpen;
        opened_at_seconds_ = obs::NowSeconds();
        breaker_trips_->Increment();
        breaker_state_gauge_->Set(static_cast<int64_t>(BreakerState::kOpen));
        degraded_gauge_->Set(1);
      }
    }
    // Non-retryable failures (e.g. a resolution-mismatched delta) are
    // caller errors: the store is healthy, so they neither count toward
    // the trip threshold nor re-open a probing breaker.
  }
  age_gauge_->Set(static_cast<int64_t>(snapshot_age_refreshes_));
  return status;
}

BreakerState ServingGuard::breaker_state() const {
  MutexLock lock(mutex_);
  return breaker_state_;
}

bool ServingGuard::degraded() const {
  MutexLock lock(mutex_);
  return breaker_state_ != BreakerState::kClosed;
}

uint64_t ServingGuard::snapshot_age_refreshes() const {
  MutexLock lock(mutex_);
  return snapshot_age_refreshes_;
}

Status ServingGuard::TickTelemetry(const std::string& openmetrics_path) {
  telemetry_->UpdateWindowGauges();
  telemetry_->EvaluateSlos();
  active_snapshot_id_gauge_->Set(
      static_cast<int64_t>(store_->active_seal_sequence()));
  snapshot_age_ms_gauge_->Set(
      MillisGauge(store_->active_snapshot_age_seconds()));
  if (openmetrics_path.empty()) {
    telemetry_exports_->Increment();
    return Status::OK();
  }
  std::string error;
  if (!obs::WriteOpenMetricsFile(openmetrics_path,
                                 obs::Registry::Global().Snapshot(), &error)) {
    telemetry_export_failures_->Increment();
    return Status::IoError("openmetrics export failed: " + error);
  }
  telemetry_exports_->Increment();
  return Status::OK();
}

Status ServingGuard::StartTelemetryExporter(
    TelemetryExporterOptions exporter_options) {
  if (!(exporter_options.period_seconds > 0.0)) {
    return Status::InvalidArgument("exporter period must be positive");
  }
  {
    MutexLock lock(exporter_mutex_);
    if (exporter_running_) {
      return Status::FailedPrecondition("telemetry exporter already running");
    }
    exporter_running_ = true;
    exporter_stop_ = false;
  }
  exporter_thread_ = std::thread(&ServingGuard::ExporterLoop, this,
                                 std::move(exporter_options));
  return Status::OK();
}

void ServingGuard::StopTelemetryExporter() {
  {
    MutexLock lock(exporter_mutex_);
    if (!exporter_running_) return;
    exporter_stop_ = true;
    exporter_cv_.NotifyAll();
  }
  if (exporter_thread_.joinable()) exporter_thread_.join();
  MutexLock lock(exporter_mutex_);
  exporter_running_ = false;
}

bool ServingGuard::telemetry_exporter_running() const {
  MutexLock lock(exporter_mutex_);
  return exporter_running_;
}

void ServingGuard::ExporterLoop(TelemetryExporterOptions exporter_options) {
  for (;;) {
    {
      MutexLock lock(exporter_mutex_);
      if (!exporter_stop_) {
        // Timeout (or spurious wake) just runs a tick; the stop flag is
        // the guarded predicate that ends the loop.
        exporter_cv_.WaitFor(exporter_mutex_, exporter_options.period_seconds);
      }
      if (exporter_stop_) return;
    }
    // An export-write failure is already counted and retried next tick;
    // the loop has nowhere to report it.
    const Status tick = TickTelemetry(exporter_options.openmetrics_path);
    static_cast<void>(tick);
  }
}

}  // namespace pol::core
