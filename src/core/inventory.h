#ifndef POL_CORE_INVENTORY_H_
#define POL_CORE_INVENTORY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/extractor.h"

// The global inventory — the paper's end product: a keyed store of
// per-cell statistical summaries for all grouping sets, queryable by
// location (and segment, and port pair), serializable to a checksummed
// binary file.

namespace pol::core {

// Table 4 quantities for one built inventory.
struct CompressionReport {
  int resolution = 0;
  uint64_t records = 0;        // Records aggregated.
  uint64_t cells = 0;          // Distinct cells touched (GI 1).
  uint64_t summaries = 0;      // Summaries across all grouping sets.
  double compression = 0.0;    // 1 - cells / records.
  double utilization = 0.0;    // cells / NumCells(resolution).
  uint64_t serialized_bytes = 0;
};

class Inventory {
 public:
  Inventory(int resolution, SummaryMap summaries);

  int resolution() const { return resolution_; }
  size_t size() const { return summaries_.size(); }
  const SummaryMap& summaries() const { return summaries_; }

  // Point lookups per grouping set; nullptr when the group is absent.
  const CellSummary* Cell(hex::CellIndex cell) const;
  const CellSummary* CellType(hex::CellIndex cell,
                              ais::MarketSegment segment) const;
  const CellSummary* CellRouteType(hex::CellIndex cell, sim::PortId origin,
                                   sim::PortId destination,
                                   ais::MarketSegment segment) const;

  // Location-based convenience (the "query for a specific location" of
  // the paper's abstract): summary of the cell containing a position.
  const CellSummary* AtPosition(const geo::LatLng& position) const;

  // The most frequent destination port for a cell (optionally per
  // segment); kNoPort when unknown.
  sim::PortId TopDestination(hex::CellIndex cell,
                             ais::MarketSegment segment,
                             bool any_segment) const;

  // All cells carrying a summary for a given (origin, destination,
  // segment) key — the route-forecasting query of section 4.1.3.
  std::vector<hex::CellIndex> CellsForRoute(sim::PortId origin,
                                            sim::PortId destination,
                                            ais::MarketSegment segment) const;

  // Distinct cells in grouping set 1 (the Table 4 "#Cells").
  uint64_t DistinctCells() const;

  // Table 4 numbers for this inventory given the aggregated record count.
  CompressionReport Compression(uint64_t records) const;

  // Incremental updates: folds another inventory (e.g. the next day's
  // batch) into this one. Summaries merge exactly (every Table-3
  // statistic is mergeable), so building per-period inventories and
  // merging equals one build over the concatenated archive. Fails on
  // resolution mismatch.
  Status MergeFrom(Inventory&& other);

  // Checksummed binary serialization.
  Status SaveToFile(const std::string& path) const;
  static Result<Inventory> LoadFromFile(const std::string& path);

  void SerializeTo(std::string* out) const;
  static Result<Inventory> DeserializeFrom(std::string_view input);

 private:
  int resolution_;
  SummaryMap summaries_;
};

}  // namespace pol::core

#endif  // POL_CORE_INVENTORY_H_
