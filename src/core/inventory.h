#ifndef POL_CORE_INVENTORY_H_
#define POL_CORE_INVENTORY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/extractor.h"
#include "core/inventory_query.h"
#include "core/route_index.h"

// The global inventory — the paper's end product: a keyed store of
// per-cell statistical summaries for all grouping sets, queryable by
// location (and segment, and port pair), serializable to a checksummed
// binary file.
//
// This is the *build side*: a mutable map that InventoryBuilder folds
// chunk results into and MergeFrom folds daily batches into. It
// implements the read-side InventoryQuery interface directly (point
// lookups are hash probes; CellsForRoute goes through an eagerly
// maintained RouteIndex), and Seal() freezes the current contents into
// an immutable, fully indexed InventorySnapshot for the serving side
// (see inventory_snapshot.h and serving_inventory.h).

namespace pol::core {

class InventorySnapshot;

// Table 4 quantities for one built inventory.
struct CompressionReport {
  int resolution = 0;
  uint64_t records = 0;        // Records aggregated.
  uint64_t cells = 0;          // Distinct cells touched (GI 1).
  uint64_t summaries = 0;      // Summaries across all grouping sets.
  double compression = 0.0;    // 1 - cells / records.
  double utilization = 0.0;    // cells / NumCells(resolution).
  uint64_t serialized_bytes = 0;
};

class Inventory final : public InventoryQuery {
 public:
  Inventory(int resolution, SummaryMap summaries);

  int resolution() const override { return resolution_; }
  size_t size() const override { return summaries_.size(); }
  const SummaryMap& summaries() const { return summaries_; }

  // Point lookups per grouping set; nullptr when the group is absent.
  const CellSummary* Cell(hex::CellIndex cell) const override;
  const CellSummary* CellType(hex::CellIndex cell,
                              ais::MarketSegment segment) const override;
  const CellSummary* CellRouteType(hex::CellIndex cell, sim::PortId origin,
                                   sim::PortId destination,
                                   ais::MarketSegment segment) const override;

  // All cells carrying a summary for a given (origin, destination,
  // segment) key — the route-forecasting query of section 4.1.3.
  // Answered by the route index in O(log routes + k), ascending cell
  // order, with the reversed-pair fallback of the interface contract.
  std::vector<hex::CellIndex> CellsForRoute(
      sim::PortId origin, sim::PortId destination,
      ais::MarketSegment segment) const override;

  // The pre-index reference implementation: a full scan over every
  // summary, same answer contract as CellsForRoute. Kept for the
  // scan-vs-index property tests and the bench_query_speedup baseline —
  // production callers use CellsForRoute.
  std::vector<hex::CellIndex> CellsForRouteScan(
      sim::PortId origin, sim::PortId destination,
      ais::MarketSegment segment) const;

  std::vector<ais::MarketSegment> SegmentsAt(
      hex::CellIndex cell) const override;

  void VisitGroupingSet(GroupingSet set,
                        const SummaryVisitor& visitor) const override;
  bool VisitGroupingSetWhile(GroupingSet set,
                             const CancellableVisitor& visitor) const override;

  // Distinct cells in grouping set 1 (the Table 4 "#Cells").
  uint64_t DistinctCells() const override;

  // Table 4 numbers for this inventory given the aggregated record count.
  CompressionReport Compression(uint64_t records) const;

  // Incremental updates: folds another inventory (e.g. the next day's
  // batch) into this one. Summaries merge exactly (every Table-3
  // statistic is mergeable), so building per-period inventories and
  // merging equals one build over the concatenated archive. Fails on
  // resolution mismatch. Not safe concurrently with queries — serve
  // reads from a sealed snapshot (ServingInventory) while merging.
  Status MergeFrom(Inventory&& other);

  // Freezes the current contents into an immutable snapshot: flat
  // sorted key/summary arrays per grouping set plus the secondary
  // indexes, built once. The build side keeps working; the snapshot
  // shares nothing with it. Records serving.seal_seconds.
  std::shared_ptr<const InventorySnapshot> Seal() const;

  // Checksummed binary serialization.
  Status SaveToFile(const std::string& path) const;
  static Result<Inventory> LoadFromFile(const std::string& path);

  void SerializeTo(std::string* out) const;
  static Result<Inventory> DeserializeFrom(std::string_view input);

 private:
  int resolution_;
  SummaryMap summaries_;
  // Rebuilt eagerly on construction and after MergeFrom, so const
  // queries never mutate state (safe for concurrent readers).
  RouteIndex route_index_;
};

}  // namespace pol::core

#endif  // POL_CORE_INVENTORY_H_
