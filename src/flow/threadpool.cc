#include "flow/threadpool.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <thread>

#include "common/check.h"
#include "common/mutex.h"
#include "obs/clock.h"

namespace pol::flow {

ThreadPool::ThreadPool(int num_threads) {
  auto& registry = obs::Registry::Global();
  queue_depth_metric_ = registry.gauge("flow.pool.queue_depth");
  tasks_metric_ = registry.counter("flow.pool.tasks");
  task_seconds_metric_ = registry.histogram("flow.pool.task_seconds");
  queue_wait_seconds_metric_ =
      registry.histogram("flow.pool.queue_wait_seconds");
  if (num_threads <= 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  PendingTask pending;
  pending.fn = std::move(task);
  if constexpr (obs::kEnabled) pending.enqueue_micros = obs::NowMicros();
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(pending));
    queue_depth_metric_->Set(static_cast<int64_t>(queue_.size()));
  }
  work_available_.NotifyOne();
}

bool ThreadPool::IsWorkerThread() const {
  // `workers_` is written only by the constructor, so scanning it
  // without the lock is safe for the pool's whole lifetime.
  const std::thread::id self = std::this_thread::get_id();
  for (const std::thread& worker : workers_) {
    if (worker.get_id() == self) return true;
  }
  return false;
}

void ThreadPool::Wait() {
  POL_DCHECK(!IsWorkerThread())
      << "ThreadPool::Wait() called from inside a pool task; this would "
         "deadlock (the calling task counts as active). Use ParallelFor "
         "for nested fan-out.";
  MutexLock lock(mutex_);
  while (!queue_.empty() || active_ != 0) all_done_.Wait(mutex_);
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  // Dynamic self-scheduling: runners pull the next index, which balances
  // skewed partition sizes. The caller is itself a runner and the wait
  // is on this call's own completion count, never on the global queue —
  // so the call makes progress even when every worker is busy (or when
  // the caller IS a worker, as with stages driven as pool tasks), and
  // concurrent ParallelFor calls do not serialize on one another.
  struct CallState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    Mutex mutex;
    CondVar finished;
  };
  auto state = std::make_shared<CallState>();
  auto run = [state, n, &fn] {
    size_t completed = 0;
    for (size_t i = state->next.fetch_add(1); i < n;
         i = state->next.fetch_add(1)) {
      fn(i);
      ++completed;
    }
    return completed;
  };
  // Helpers beyond the caller; a helper that arrives after all indices
  // are claimed exits without touching `fn`.
  const size_t helpers =
      std::min(n - 1, static_cast<size_t>(num_threads()));
  for (size_t t = 0; t < helpers; ++t) {
    Submit([state, n, run] {
      const size_t completed = run();
      if (completed != 0 &&
          state->done.fetch_add(completed) + completed == n) {
        MutexLock lock(state->mutex);
        state->finished.NotifyAll();
      }
    });
  }
  const size_t completed = run();
  if (completed != 0) state->done.fetch_add(completed);
  MutexLock lock(state->mutex);
  while (state->done.load() != n) state->finished.Wait(state->mutex);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    PendingTask task;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && queue_.empty()) work_available_.Wait(mutex_);
      if (queue_.empty()) return;  // Shutting down.
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      queue_depth_metric_->Set(static_cast<int64_t>(queue_.size()));
    }
    if constexpr (obs::kEnabled) {
      const uint64_t start_micros = obs::NowMicros();
      queue_wait_seconds_metric_->Record(
          static_cast<double>(start_micros - task.enqueue_micros) * 1e-6);
      task.fn();
      task_seconds_metric_->Record(
          static_cast<double>(obs::NowMicros() - start_micros) * 1e-6);
      tasks_metric_->Increment();
    } else {
      task.fn();
    }
    {
      MutexLock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace pol::flow
