#include "flow/threadpool.h"

#include <algorithm>
#include <atomic>

namespace pol::flow {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  // Dynamic self-scheduling: workers pull the next index; this balances
  // skewed partition sizes.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  const size_t tasks =
      std::min(n, static_cast<size_t>(num_threads()));
  for (size_t t = 0; t < tasks; ++t) {
    Submit([next, n, &fn] {
      for (size_t i = next->fetch_add(1); i < n; i = next->fetch_add(1)) {
        fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutting down.
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace pol::flow
