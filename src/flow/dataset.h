#ifndef POL_FLOW_DATASET_H_
#define POL_FLOW_DATASET_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "flow/threadpool.h"

// Dataset<T>: an in-memory partitioned collection with the MapReduce
// operations the paper's methodology is written in (map / filter /
// key-based shuffle / per-partition sort / mergeable aggregation).
//
// This is the in-process stand-in for Apache Spark used by the original
// system. Operations parallelize over partitions on a ThreadPool, and —
// the property that matters for correctness — every aggregation result
// is independent of the number of partitions and worker threads, as
// long as the accumulator's Merge is order-insensitive for the queried
// statistics (all sketches in pol::stats are; see the merge property
// tests). Merging across partitions always proceeds in ascending
// partition order, so results are bit-for-bit reproducible run to run.

namespace pol::flow {

template <typename T>
class Dataset {
 public:
  // Wraps existing partitions. The pool must outlive the dataset.
  Dataset(std::vector<std::vector<T>> partitions, ThreadPool* pool)
      : partitions_(std::move(partitions)), pool_(pool) {
    POL_CHECK(pool_ != nullptr);
    POL_CHECK(!partitions_.empty()) << "datasets have at least one partition";
  }

  // Splits `data` into exactly `num_partitions` contiguous slices in
  // input order. The split is balanced: partition sizes differ by at
  // most one, so no partition is empty while another holds two or more.
  // Requesting more partitions than elements is well defined — the
  // result still has `num_partitions` partitions, with the elements
  // spread evenly and the excess partitions empty.
  static Dataset FromVector(std::vector<T> data, int num_partitions,
                            ThreadPool* pool) {
    POL_CHECK(num_partitions >= 1);
    const size_t p = static_cast<size_t>(num_partitions);
    std::vector<std::vector<T>> partitions(p);
    for (size_t i = 0; i < p; ++i) {
      const size_t begin = i * data.size() / p;
      const size_t end = (i + 1) * data.size() / p;
      partitions[i].assign(std::make_move_iterator(data.begin() + begin),
                           std::make_move_iterator(data.begin() + end));
    }
    Dataset dataset(std::move(partitions), pool);
    POL_CHECK(dataset.num_partitions() == num_partitions);
    return dataset;
  }

  int num_partitions() const { return static_cast<int>(partitions_.size()); }

  const std::vector<T>& partition(int index) const {
    POL_DCHECK(index >= 0 && index < num_partitions());
    return partitions_[static_cast<size_t>(index)];
  }

  size_t Count() const {
    size_t total = 0;
    for (const auto& p : partitions_) total += p.size();
    return total;
  }

  // Concatenation of all partitions in partition order.
  std::vector<T> Collect() const {
    std::vector<T> out;
    out.reserve(Count());
    for (const auto& p : partitions_) {
      out.insert(out.end(), p.begin(), p.end());
    }
    return out;
  }

  // Element-wise transform. U = fn(const T&).
  template <typename F>
  auto Map(F fn) const -> Dataset<std::decay_t<std::invoke_result_t<F, const T&>>> {
    using U = std::decay_t<std::invoke_result_t<F, const T&>>;
    std::vector<std::vector<U>> out(partitions_.size());
    pool_->ParallelFor(partitions_.size(), [&](size_t i) {
      out[i].reserve(partitions_[i].size());
      for (const T& item : partitions_[i]) out[i].push_back(fn(item));
    });
    return Dataset<U>(std::move(out), pool_);
  }

  // Keeps elements satisfying the predicate.
  template <typename Pred>
  Dataset<T> Filter(Pred pred) const {
    std::vector<std::vector<T>> out(partitions_.size());
    pool_->ParallelFor(partitions_.size(), [&](size_t i) {
      for (const T& item : partitions_[i]) {
        if (pred(item)) out[i].push_back(item);
      }
    });
    return Dataset<T>(std::move(out), pool_);
  }

  // One-to-many transform. fn returns a container of U.
  template <typename F>
  auto FlatMap(F fn) const
      -> Dataset<typename std::decay_t<std::invoke_result_t<F, const T&>>::value_type> {
    using U = typename std::decay_t<std::invoke_result_t<F, const T&>>::value_type;
    std::vector<std::vector<U>> out(partitions_.size());
    pool_->ParallelFor(partitions_.size(), [&](size_t i) {
      for (const T& item : partitions_[i]) {
        for (auto& produced : fn(item)) out[i].push_back(std::move(produced));
      }
    });
    return Dataset<U>(std::move(out), pool_);
  }

  // Whole-partition transform: fn(const std::vector<T>&) -> std::vector<U>.
  // The workhorse for per-vessel sequence logic after a key shuffle +
  // sort (runs of one vessel are contiguous within a partition).
  template <typename F>
  auto MapPartitions(F fn) const
      -> Dataset<typename std::decay_t<
          std::invoke_result_t<F, const std::vector<T>&>>::value_type> {
    using U = typename std::decay_t<
        std::invoke_result_t<F, const std::vector<T>&>>::value_type;
    std::vector<std::vector<U>> out(partitions_.size());
    pool_->ParallelFor(partitions_.size(),
                       [&](size_t i) { out[i] = fn(partitions_[i]); });
    return Dataset<U>(std::move(out), pool_);
  }

  // Hash-shuffles elements so that equal keys land in the same target
  // partition. key_fn(const T&) must return a hashable value. Output
  // order within a partition follows (source partition, source position),
  // so the shuffle is deterministic for a fixed input partitioning.
  template <typename KeyFn>
  Dataset<T> PartitionByKey(KeyFn key_fn, int num_target_partitions) const {
    POL_CHECK(num_target_partitions >= 1);
    const size_t targets = static_cast<size_t>(num_target_partitions);
    using Key = std::decay_t<std::invoke_result_t<KeyFn, const T&>>;
    // Per-source bucketing in parallel, then ordered concatenation.
    std::vector<std::vector<std::vector<T>>> buckets(partitions_.size());
    pool_->ParallelFor(partitions_.size(), [&](size_t src) {
      buckets[src].assign(targets, {});
      for (const T& item : partitions_[src]) {
        const size_t target =
            std::hash<Key>{}(key_fn(item)) % targets;
        buckets[src][target].push_back(item);
      }
    });
    std::vector<std::vector<T>> out(targets);
    pool_->ParallelFor(targets, [&](size_t target) {
      size_t total = 0;
      for (const auto& src : buckets) total += src[target].size();
      out[target].reserve(total);
      for (auto& src : buckets) {
        out[target].insert(out[target].end(),
                           std::make_move_iterator(src[target].begin()),
                           std::make_move_iterator(src[target].end()));
      }
    });
    return Dataset<T>(std::move(out), pool_);
  }

  // Concatenates two datasets (Spark's union): the result holds the
  // partitions of both, in order. Both must share a pool.
  Dataset<T> Union(const Dataset<T>& other) const {
    POL_CHECK(other.pool_ == pool_) << "union across thread pools";
    std::vector<std::vector<T>> partitions = partitions_;
    partitions.insert(partitions.end(), other.partitions_.begin(),
                      other.partitions_.end());
    return Dataset<T>(std::move(partitions), pool_);
  }

  // Reduces to `num_partitions` by concatenating whole partitions in
  // order (Spark's coalesce: no shuffle, order preserved).
  Dataset<T> Coalesce(int num_partitions) const {
    POL_CHECK(num_partitions >= 1);
    const size_t targets = static_cast<size_t>(
        std::min<int>(num_partitions, this->num_partitions()));
    std::vector<std::vector<T>> out(targets);
    // Contiguous groups keep global order: partition i goes to bucket
    // floor(i * targets / P).
    const size_t p = partitions_.size();
    for (size_t i = 0; i < p; ++i) {
      auto& target = out[i * targets / p];
      target.insert(target.end(), partitions_[i].begin(),
                    partitions_[i].end());
    }
    return Dataset<T>(std::move(out), pool_);
  }

  // Consumes the dataset and regroups its partitions into `num_chunks`
  // contiguous, balanced groups — the chunk source for the stage
  // runner. Partition identity and order are preserved exactly:
  // concatenating the chunks' partition lists reproduces this dataset's
  // partition list, which is what keeps chunked aggregation bit-equal
  // to single-shot aggregation (partials always merge in ascending
  // global partition order). When `num_chunks` exceeds the partition
  // count, the excess chunks hold one empty partition each.
  std::vector<Dataset<T>> SplitIntoChunks(int num_chunks) && {
    POL_CHECK(num_chunks >= 1);
    const size_t c = static_cast<size_t>(num_chunks);
    const size_t p = partitions_.size();
    std::vector<Dataset<T>> chunks;
    chunks.reserve(c);
    for (size_t i = 0; i < c; ++i) {
      const size_t begin = i * p / c;
      const size_t end = (i + 1) * p / c;
      std::vector<std::vector<T>> group;
      if (begin == end) {
        group.emplace_back();  // Placeholder: datasets need >= 1 partition.
      } else {
        group.assign(std::make_move_iterator(partitions_.begin() + begin),
                     std::make_move_iterator(partitions_.begin() + end));
      }
      chunks.push_back(Dataset(std::move(group), pool_));
    }
    partitions_.clear();
    return chunks;
  }

  // Stable-sorts every partition independently (Spark's
  // sortWithinPartitions).
  template <typename Less>
  Dataset<T> SortWithinPartitions(Less less) const {
    std::vector<std::vector<T>> out(partitions_.size());
    pool_->ParallelFor(partitions_.size(), [&](size_t i) {
      out[i] = partitions_[i];
      std::stable_sort(out[i].begin(), out[i].end(), less);
    });
    return Dataset<T>(std::move(out), pool_);
  }

  // Grouped aggregation with mergeable accumulators — the reduce phase
  // of the paper's feature extraction.
  //
  //   key_fn(const T&)            -> Key (hashable, equality-comparable)
  //   init_fn()                   -> Acc
  //   add_fn(Acc&, const T&)      folds one element
  //   merge_fn(Acc&, Acc&&)       folds a partial accumulator
  //
  // Each partition aggregates locally; partials are then combined per
  // key in ascending partition order (deterministic).
  template <typename KeyFn, typename InitFn, typename AddFn, typename MergeFn>
  auto AggregateByKey(KeyFn key_fn, InitFn init_fn, AddFn add_fn,
                      MergeFn merge_fn) const
      -> std::unordered_map<std::decay_t<std::invoke_result_t<KeyFn, const T&>>,
                            std::decay_t<std::invoke_result_t<InitFn>>> {
    using Key = std::decay_t<std::invoke_result_t<KeyFn, const T&>>;
    using Acc = std::decay_t<std::invoke_result_t<InitFn>>;
    using LocalMap = std::unordered_map<Key, Acc>;

    // Map phase: local aggregation per partition.
    std::vector<LocalMap> locals(partitions_.size());
    pool_->ParallelFor(partitions_.size(), [&](size_t i) {
      LocalMap& local = locals[i];
      for (const T& item : partitions_[i]) {
        auto it = local.try_emplace(key_fn(item), init_fn()).first;
        add_fn(it->second, item);
      }
    });

    // Reduce phase: merge partials bucket-parallel, partition-ordered.
    const size_t buckets = partitions_.size();
    std::vector<LocalMap> merged(buckets);
    pool_->ParallelFor(buckets, [&](size_t b) {
      for (LocalMap& local : locals) {
        for (auto& [key, acc] : local) {
          if (std::hash<Key>{}(key) % buckets != b) continue;
          auto [it, inserted] = merged[b].try_emplace(key, init_fn());
          if (inserted) {
            it->second = std::move(acc);
          } else {
            merge_fn(it->second, std::move(acc));
          }
        }
      }
    });

    std::unordered_map<Key, Acc> result;
    size_t total = 0;
    for (const auto& m : merged) total += m.size();
    result.reserve(total);
    for (LocalMap& m : merged) {
      for (auto& [key, acc] : m) {
        const bool inserted = result.emplace(key, std::move(acc)).second;
        POL_DCHECK(inserted) << "key present in two merge buckets";
      }
    }
    return result;
  }

  ThreadPool* pool() const { return pool_; }

 private:
  std::vector<std::vector<T>> partitions_;
  ThreadPool* pool_;
};

}  // namespace pol::flow

#endif  // POL_FLOW_DATASET_H_
