#ifndef POL_FLOW_STAGE_RUNNER_H_
#define POL_FLOW_STAGE_RUNNER_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "flow/stage.h"
#include "flow/threadpool.h"

// StageRunner: drives a StageChain over an input split into bounded
// chunks. Up to `max_in_flight` chunks run concurrently as pool tasks,
// so stage i works on chunk k+1 while stage i+1 works on chunk k (the
// Dataset operations inside each stage fan out over the same pool —
// ParallelFor is caller-participating, so a stage task never deadlocks
// waiting for workers). Outputs are handed to the sink strictly in
// ascending chunk order on the calling thread, which is what makes
// incremental inventory folding deterministic: folding chunk results in
// chunk order reproduces the single-shot merge order bit for bit (see
// dataset.h on the reproducibility contract).

namespace pol::flow {

template <typename In, typename Out>
class StageRunner {
 public:
  struct Options {
    // Chunks allowed in flight at once. 1 = strictly sequential chunks;
    // 2 (default) overlaps one chunk's tail stages with the next
    // chunk's head stages while bounding peak memory to ~2 chunks of
    // intermediates.
    int max_in_flight = 2;
  };

  StageRunner(StageChain<In, Out> chain, ThreadPool* pool,
              Options options = Options())
      : chain_(std::move(chain)), pool_(pool), options_(options) {
    POL_CHECK(pool_ != nullptr);
    POL_CHECK(options_.max_in_flight >= 1);
  }

  // Runs every chunk through the chain; `sink(chunk_index, output)` is
  // invoked on the calling thread, in ascending chunk order. Blocks
  // until all chunks are processed and folded.
  void Run(std::vector<Dataset<In>> chunks,
           const std::function<void(size_t, Dataset<Out>)>& sink) {
    const size_t total = chunks.size();
    if (total == 0) return;

    struct Slot {
      std::optional<Dataset<Out>> result;
    };
    std::vector<Slot> slots(total);
    std::mutex mutex;
    std::condition_variable ready;
    size_t in_flight = 0;
    size_t next_to_submit = 0;

    for (size_t next_to_fold = 0; next_to_fold < total; ++next_to_fold) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        for (;;) {
          // Keep the window full.
          while (next_to_submit < total &&
                 in_flight < static_cast<size_t>(options_.max_in_flight)) {
            const size_t k = next_to_submit++;
            ++in_flight;
            Dataset<In>* chunk = &chunks[k];
            pool_->Submit([this, k, chunk, &slots, &mutex, &ready,
                           &in_flight] {
              Dataset<Out> out =
                  chain_.RunChunk(std::move(*chunk), &collector_);
              std::unique_lock<std::mutex> task_lock(mutex);
              slots[k].result.emplace(std::move(out));
              --in_flight;
              ready.notify_all();
            });
          }
          if (slots[next_to_fold].result.has_value()) break;
          ready.wait(lock);
        }
      }
      Dataset<Out> out = std::move(*slots[next_to_fold].result);
      slots[next_to_fold].result.reset();
      sink(next_to_fold, std::move(out));
    }
  }

  // Metrics accumulated so far, one entry per chain stage.
  std::vector<StageMetrics> metrics() const { return collector_.Snapshot(); }

  const StageChain<In, Out>& chain() const { return chain_; }

 private:
  StageChain<In, Out> chain_;
  ThreadPool* pool_;
  Options options_;
  StageMetricsCollector collector_;
};

}  // namespace pol::flow

#endif  // POL_FLOW_STAGE_RUNNER_H_
