#ifndef POL_FLOW_STAGE_RUNNER_H_
#define POL_FLOW_STAGE_RUNNER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "common/status.h"
#include "flow/stage.h"
#include "flow/threadpool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

// StageRunner: drives a StageChain over an input split into bounded
// chunks. Up to `max_in_flight` chunks run concurrently as pool tasks,
// so stage i works on chunk k+1 while stage i+1 works on chunk k (the
// Dataset operations inside each stage fan out over the same pool —
// ParallelFor is caller-participating, so a stage task never deadlocks
// waiting for workers). Outputs are handed to the sink strictly in
// ascending chunk order on the calling thread, which is what makes
// incremental inventory folding deterministic: folding chunk results in
// chunk order reproduces the single-shot merge order bit for bit (see
// dataset.h on the reproducibility contract).
//
// Failure containment. A chunk whose chain attempt returns a
// *retryable* error (Status::IsRetryable() — transient infrastructure
// faults; caller errors go straight to quarantine) is retried up to
// `max_attempts` times total, with exponential backoff between
// attempts (the input is defensively copied for every attempt
// except the last, so a retry always sees the original bytes). A chunk
// that exhausts its attempts is *quarantined*: the run continues, the
// failure is recorded as a ChunkFailure dead letter in the RunSummary
// (and reported through `on_quarantine` in ascending chunk order), and
// the per-stage/per-reason counters land in StageMetrics. With
// `fail_fast` set, the first exhausted chunk aborts the run instead —
// the mode the checkpoint/resume layer uses to simulate a crash. The
// sink returns a Status; a non-OK sink (e.g. a failed checkpoint write
// in fail-fast mode) also aborts the run. On every abort path — and
// when the sink throws — all in-flight pool tasks are drained before
// Run returns, so no task is left referencing the call's stack frame.

namespace pol::flow {

// One quarantined chunk: the dead-letter record of the chunk the run
// gave up on.
struct ChunkFailure {
  size_t chunk_index = 0;
  uint64_t records = 0;  // Records in the failed input chunk.
  int attempts = 0;      // Attempts made (== Options::max_attempts).
  Status status;         // Final attempt's error, "<stage>: <message>".
};

// Coverage accounting for one Run call: every input chunk is either
// skipped (below the resume cursor), folded, or quarantined — unless
// the run aborted, in which case `status` says why and the remaining
// chunks are unaccounted.
struct RunSummary {
  Status status;  // OK unless the run aborted (fail_fast / sink error).
  size_t chunks_total = 0;
  size_t chunks_skipped = 0;  // Below `start_chunk` (checkpoint resume).
  size_t chunks_folded = 0;
  size_t chunks_quarantined = 0;
  uint64_t records_quarantined = 0;  // Input records in quarantined chunks.
  uint64_t retries = 0;              // Attempts beyond each chunk's first.
  std::vector<ChunkFailure> quarantined;  // Ascending chunk index.
};

template <typename In, typename Out>
class StageRunner {
 public:
  struct Options {
    // Chunks allowed in flight at once. 1 = strictly sequential chunks;
    // 2 (default) overlaps one chunk's tail stages with the next
    // chunk's head stages while bounding peak memory to ~2 chunks of
    // intermediates.
    int max_in_flight = 2;
    // Total chain attempts per chunk. 1 = no retry (and no defensive
    // input copy — the historical zero-overhead behavior). With N > 1,
    // attempts 1..N-1 run on a copy of the input chunk, so peak memory
    // gains up to one extra input chunk per in-flight chunk.
    int max_attempts = 1;
    // Backoff before retry r (1-based) is retry_backoff_seconds *
    // 2^(r-1), slept on the pool task. 0 = immediate retry (tests).
    double retry_backoff_seconds = 0.0;
    // Abort the run on the first chunk that exhausts its attempts,
    // instead of quarantining it and continuing.
    bool fail_fast = false;
  };

  StageRunner(StageChain<In, Out> chain, ThreadPool* pool,
              Options options = Options())
      : chain_(std::move(chain)), pool_(pool), options_(options) {
    POL_CHECK(pool_ != nullptr);
    POL_CHECK(options_.max_in_flight >= 1);
    POL_CHECK(options_.max_attempts >= 1);
  }

  // Runs chunks [start_chunk, chunks.size()) through the chain;
  // `sink(chunk_index, output)` is invoked on the calling thread, in
  // ascending chunk order, and may veto the rest of the run by
  // returning a non-OK Status. `on_quarantine` (optional) observes each
  // dead-lettered chunk, also on the calling thread in ascending order
  // — before any later chunk is folded, which is what lets a checkpoint
  // layer persist quarantine decisions in cursor order. Blocks until
  // all processed chunks are folded or quarantined and no task is in
  // flight.
  RunSummary Run(
      std::vector<Dataset<In>> chunks,
      const std::function<Status(size_t, Dataset<Out>)>& sink,
      size_t start_chunk = 0,
      const std::function<void(const ChunkFailure&)>& on_quarantine = {}) {
    POL_TRACE_SPAN("flow.run");
    RunSummary summary;
    summary.chunks_total = chunks.size();
    const size_t total = chunks.size();
    summary.chunks_skipped = std::min(start_chunk, total);
    if (start_chunk >= total) return summary;

    // Outcome of one chunk's (possibly retried) trip through the chain.
    struct Slot {
      std::optional<Dataset<Out>> result;  // Engaged on success.
      Status status;                       // Error of the final attempt.
      uint64_t records = 0;                // Input records (for coverage).
      int attempts = 0;
      bool done = false;
    };
    std::vector<Slot> slots(total);
    Mutex mutex;
    CondVar ready;
    size_t in_flight = 0;
    size_t next_to_submit = start_chunk;
    std::atomic<uint64_t> retries{0};

    // Abort paths must not leave pool tasks referencing this frame.
    const auto drain = [&] {
      MutexLock lock(mutex);
      while (in_flight != 0) ready.Wait(mutex);
    };

    for (size_t next_to_fold = start_chunk; next_to_fold < total;
         ++next_to_fold) {
      {
        MutexLock lock(mutex);
        for (;;) {
          // Keep the window full.
          while (next_to_submit < total &&
                 in_flight < static_cast<size_t>(options_.max_in_flight)) {
            const size_t k = next_to_submit++;
            ++in_flight;
            Dataset<In>* chunk = &chunks[k];
            pool_->Submit([this, k, chunk, &slots, &mutex, &ready,
                           &in_flight, &retries] {
              {
                obs::ScopedSpan span("chunk." + std::to_string(k));
                RunChunkWithRetries(chunk, &slots[k], &retries);
              }
              MutexLock task_lock(mutex);
              slots[k].done = true;
              --in_flight;
              ready.NotifyAll();
            });
          }
          if (slots[next_to_fold].done) break;
          ready.Wait(mutex);
        }
      }
      Slot& slot = slots[next_to_fold];
      if (slot.result.has_value()) {
        Dataset<Out> out = std::move(*slot.result);
        slot.result.reset();
        Status sink_status;
        try {
          sink_status = sink(next_to_fold, std::move(out));
        } catch (...) {
          drain();
          throw;
        }
        if (!sink_status.ok()) {
          summary.status = std::move(sink_status);
          break;
        }
        ++summary.chunks_folded;
        continue;
      }
      // The chunk exhausted its attempts.
      ChunkFailure failure;
      failure.chunk_index = next_to_fold;
      failure.records = slot.records;
      failure.attempts = slot.attempts;
      failure.status = slot.status;
      if (options_.fail_fast) {
        summary.status = failure.status;
        break;
      }
      ++summary.chunks_quarantined;
      summary.records_quarantined += failure.records;
      if (on_quarantine) {
        try {
          on_quarantine(failure);
        } catch (...) {
          drain();
          throw;
        }
      }
      summary.quarantined.push_back(std::move(failure));
    }
    drain();
    summary.retries = retries.load();
    if constexpr (obs::kEnabled) {
      auto& registry = obs::Registry::Global();
      registry.counter("pipeline.chunks_folded")
          ->Increment(summary.chunks_folded);
      registry.counter("pipeline.chunks_quarantined")
          ->Increment(summary.chunks_quarantined);
      registry.counter("pipeline.chunk_retries")->Increment(summary.retries);
    }
    return summary;
  }

  // Metrics accumulated so far, one entry per chain stage.
  std::vector<StageMetrics> metrics() const { return collector_.Snapshot(); }

  const StageChain<In, Out>& chain() const { return chain_; }

 private:
  // Runs one chunk through the chain with the retry policy; fills the
  // slot's result/status/attempts. Runs on a pool task; the slot is
  // published under the runner's mutex by the caller.
  template <typename Slot>
  void RunChunkWithRetries(Dataset<In>* chunk, Slot* slot,
                           std::atomic<uint64_t>* retries) {
    slot->records = chunk->Count();
    for (int attempt = 1;; ++attempt) {
      const bool final_attempt = attempt >= options_.max_attempts;
      // Retryable attempts run on a defensive copy: the chain consumes
      // its input, and a retry must see the original bytes.
      Result<Dataset<Out>> out =
          final_attempt ? chain_.RunChunk(std::move(*chunk), &collector_)
                        : chain_.RunChunk(Dataset<In>(*chunk), &collector_);
      slot->attempts = attempt;
      if (out.ok()) {
        slot->result.emplace(std::move(out).value());
        return;
      }
      slot->status = out.status();
      if (final_attempt) return;
      // Retryability is centralized in Status::IsRetryable() (shared
      // with the serving-side refresh circuit breaker): a caller error
      // like kInvalidArgument fails identically on every attempt, so
      // burning the remaining attempts — and the backoff sleeps — on it
      // only delays the quarantine decision.
      if (!slot->status.IsRetryable()) return;
      retries->fetch_add(1);
      if (options_.retry_backoff_seconds > 0.0) {
        const double factor =
            static_cast<double>(uint64_t{1} << std::min(attempt - 1, 62));
        std::this_thread::sleep_for(std::chrono::duration<double>(
            options_.retry_backoff_seconds * factor));
      }
    }
  }

  StageChain<In, Out> chain_;
  ThreadPool* pool_;
  Options options_;
  StageMetricsCollector collector_;
};

}  // namespace pol::flow

#endif  // POL_FLOW_STAGE_RUNNER_H_
