#include "flow/stage.h"

#include <cstdio>
#include <string>
#include <vector>

namespace pol::flow {

namespace {

std::string FormatCount(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

// The most frequent failure reason (StatusCode name), "-" when the
// stage never failed. Ties break towards the lexicographically first
// reason (map order), keeping the table deterministic.
std::string TopFailureReason(const StageMetrics& m) {
  std::string top = "-";
  uint64_t best = 0;
  for (const auto& [reason, count] : m.failures_by_reason) {
    if (count > best) {
      best = count;
      top = reason;
    }
  }
  return top;
}

}  // namespace

std::string StageMetricsTable(const std::vector<StageMetrics>& metrics) {
  std::string out;
  char line[224];
  std::snprintf(line, sizeof(line),
                "%-12s %7s %14s %14s %12s %10s %7s %9s  %s\n", "stage",
                "chunks", "records in", "records out", "dropped", "peak part",
                "failed", "time (s)", "top reason");
  out += line;
  for (const StageMetrics& m : metrics) {
    std::snprintf(line, sizeof(line),
                  "%-12s %7llu %14s %14s %12s %10s %7llu %9.3f  %s\n",
                  m.name.c_str(), static_cast<unsigned long long>(m.chunks),
                  FormatCount(m.records_in).c_str(),
                  FormatCount(m.records_out).c_str(),
                  FormatCount(m.dropped).c_str(),
                  FormatCount(m.peak_partition).c_str(),
                  static_cast<unsigned long long>(m.failures),
                  m.wall_seconds, TopFailureReason(m).c_str());
    out += line;
  }
  return out;
}

}  // namespace pol::flow
