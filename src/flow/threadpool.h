#ifndef POL_FLOW_THREADPOOL_H_
#define POL_FLOW_THREADPOOL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

// Fixed-size worker pool driving the dataflow engine. Tasks are
// fire-and-forget closures; Wait() blocks until everything submitted so
// far has finished. The pool is the only concurrency primitive in the
// library — Dataset operations express all parallelism through it.
//
// The pool is an instrumentation hot path, so its metric handles
// ("flow.pool.queue_depth" gauge, "flow.pool.tasks" counter,
// "flow.pool.task_seconds" / "flow.pool.queue_wait_seconds" histograms)
// are resolved once in the constructor; per-task recording is relaxed
// atomics only, and the clock reads vanish under POL_OBS=OFF.

namespace pol::flow {

class ThreadPool {
 public:
  // `num_threads` <= 0 selects the hardware concurrency (at least 1).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Safe from any thread, including from inside tasks.
  void Submit(std::function<void()> task);

  // Blocks until the queue is empty and no task is running. Must not be
  // called from inside a task: the calling task counts as active, so
  // the wait could never finish. The precondition is enforced with a
  // POL_DCHECK (debug builds abort instead of deadlocking); use
  // ParallelFor for fan-out that is safe from inside tasks.
  void Wait();

  // True when the calling thread is one of this pool's workers — i.e.
  // the caller is executing inside a pool task.
  bool IsWorkerThread() const;

  // Runs `fn(i)` for i in [0, n) across the pool and returns when every
  // index has completed. The caller participates in the work, so the
  // call is safe from ANY thread — including from inside a pool task
  // (the stage runner drives whole pipeline stages as tasks) — and
  // multiple ParallelFor calls may run concurrently without waiting on
  // each other's work.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  // A queued task plus its enqueue timestamp (microseconds, obs clock)
  // so the worker can attribute queue-wait latency. The timestamp is 0
  // when observability is compiled out.
  struct PendingTask {
    std::function<void()> fn;
    uint64_t enqueue_micros = 0;
  };

  void WorkerLoop();

  Mutex mutex_;
  CondVar work_available_;
  CondVar all_done_;
  std::deque<PendingTask> queue_ POL_GUARDED_BY(mutex_);
  size_t active_ POL_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ POL_GUARDED_BY(mutex_) = false;
  // Written only by the constructor; read lock-free thereafter.
  std::vector<std::thread> workers_;

  // Cached registry handles (stable pointers; dummies when disabled).
  obs::Gauge* queue_depth_metric_ = nullptr;
  obs::Counter* tasks_metric_ = nullptr;
  obs::Histogram* task_seconds_metric_ = nullptr;
  obs::Histogram* queue_wait_seconds_metric_ = nullptr;
};

}  // namespace pol::flow

#endif  // POL_FLOW_THREADPOOL_H_
