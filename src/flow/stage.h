#ifndef POL_FLOW_STAGE_H_
#define POL_FLOW_STAGE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "flow/dataset.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"

// The stage graph: the pipeline's execution layer.
//
// A Stage<In, Out> is a batch-in/batch-out transform over Dataset
// chunks. A StageChain composes stages into a single typed chunk
// function; the StageRunner (stage_runner.h) drives a chain over an
// input split into bounded chunks, overlapping stage i on chunk k+1
// with stage i+1 on chunk k via the shared ThreadPool.
//
// Failure model: RunChunk returns Result<Dataset<Out>> — a stage that
// cannot process a chunk reports an error Status instead of taking the
// run down. The chain stops at the first failing stage (annotating the
// Status with the stage name), and the StageRunner retries the chunk
// and finally quarantines it (see stage_runner.h). Every stage boundary
// carries a fail point named "stage.<name>" for fault-injection builds.
//
// A stage may run on several chunks concurrently, so implementations
// must be const-safe over shared state and guard any mutable
// accumulation (the core stages guard their running Stats structs with
// a mutex). Per-stage observability is recorded through a
// StageMetricsCollector shared by all in-flight chunks.

namespace pol::flow {

// Accumulated per-stage observability, summed over all chunks the
// stage processed. Failed attempts count into `failures` (by reason)
// and do NOT contribute to records_in/records_out — only completed
// chunk attempts do.
struct StageMetrics {
  std::string name;
  uint64_t chunks = 0;        // Chunk attempts this stage completed.
  uint64_t records_in = 0;    // Records entering the stage.
  uint64_t records_out = 0;   // Records leaving the stage.
  uint64_t dropped = 0;       // max(in - out, 0), summed per chunk.
  size_t peak_partition = 0;  // Largest output partition observed.
  double wall_seconds = 0.0;  // Stage busy time, summed across chunks.
  uint64_t failures = 0;      // Chunk attempts that errored at this stage.
  // Failure counts keyed by StatusCodeName(code) — the per-stage /
  // per-reason quarantine accounting.
  std::map<std::string, uint64_t> failures_by_reason;
};

// Fixed-width ASCII table of per-stage metrics (benches, examples).
std::string StageMetricsTable(const std::vector<StageMetrics>& metrics);

// Thread-safe accumulator for per-stage metrics; shared by every chunk
// in flight.
class StageMetricsCollector {
 public:
  void Record(size_t stage, std::string_view name, uint64_t records_in,
              uint64_t records_out, size_t peak_partition,
              double wall_seconds) {
    MutexLock lock(mutex_);
    StageMetrics& m = Slot(stage, name);
    ++m.chunks;
    m.records_in += records_in;
    m.records_out += records_out;
    if (records_in > records_out) m.dropped += records_in - records_out;
    m.peak_partition = std::max(m.peak_partition, peak_partition);
    m.wall_seconds += wall_seconds;
  }

  void RecordFailure(size_t stage, std::string_view name, StatusCode code) {
    MutexLock lock(mutex_);
    StageMetrics& m = Slot(stage, name);
    ++m.failures;
    ++m.failures_by_reason[std::string(StatusCodeName(code))];
  }

  std::vector<StageMetrics> Snapshot() const {
    MutexLock lock(mutex_);
    return metrics_;
  }

 private:
  StageMetrics& Slot(size_t stage, std::string_view name)
      POL_REQUIRES(mutex_) {
    if (metrics_.size() <= stage) metrics_.resize(stage + 1);
    StageMetrics& m = metrics_[stage];
    if (m.name.empty()) m.name = std::string(name);
    return m;
  }

  mutable Mutex mutex_;
  std::vector<StageMetrics> metrics_ POL_GUARDED_BY(mutex_);
};

// One pipeline stage: consumes a chunk, produces a chunk or an error.
// RunChunk may be called concurrently for different chunks, and may be
// called again with a copy of the same chunk when the runner retries.
template <typename In, typename Out>
class Stage {
 public:
  virtual ~Stage() = default;
  virtual std::string_view name() const = 0;
  virtual Result<Dataset<Out>> RunChunk(Dataset<In> input) = 0;
};

namespace internal {

template <typename T>
size_t MaxPartitionSize(const Dataset<T>& dataset) {
  size_t peak = 0;
  for (int p = 0; p < dataset.num_partitions(); ++p) {
    peak = std::max(peak, dataset.partition(p).size());
  }
  return peak;
}

// "stage.<name>" — the fail-point site guarding a stage boundary.
inline std::string StageFailPointName(std::string_view stage_name) {
  return "stage." + std::string(stage_name);
}

// "<stage>: <message>" so quarantine entries name the failing stage.
inline Status AnnotateWithStage(std::string_view stage_name, Status status) {
  return Status(status.code(),
                std::string(stage_name) + ": " + status.message());
}

// Registry metrics of one stage, recorded per completed chunk: the
// wall-time counter named "stage.<name>.wall_micros" (the monotonic
// form of StageMetrics::wall_seconds) and the per-chunk latency
// histogram "stage.<name>.chunk_seconds". Accumulated once per chunk,
// so the registry lookup cost is amortized over whole-stage work.
inline void RecordStageRegistryMetrics(std::string_view stage_name,
                                       double seconds) {
  if constexpr (obs::kEnabled) {
    const std::string prefix = "stage." + std::string(stage_name);
    obs::Registry::Global()
        .counter(prefix + ".wall_micros")
        ->Increment(static_cast<uint64_t>(seconds * 1e6));
    obs::Registry::Global()
        .histogram(prefix + ".chunk_seconds")
        ->Record(seconds);
  } else {
    (void)stage_name;
    (void)seconds;
  }
}

// Runs one stage over one chunk and records its metrics (or its
// failure). Errors come from the stage itself or from the armed
// "stage.<name>" fail point at the boundary.
template <typename In, typename Out>
Result<Dataset<Out>> RunStage(Stage<In, Out>& stage, Dataset<In> input,
                              size_t stage_index,
                              StageMetricsCollector* metrics) {
  Status injected = POL_FAILPOINT(StageFailPointName(stage.name()));
  if (!injected.ok()) {
    if (metrics != nullptr) {
      metrics->RecordFailure(stage_index, stage.name(), injected.code());
    }
    return AnnotateWithStage(stage.name(), std::move(injected));
  }
  POL_TRACE_SPAN(StageFailPointName(stage.name()));  // "stage.<name>".
  const uint64_t records_in = input.Count();
  const double start = obs::NowSeconds();
  Result<Dataset<Out>> output = stage.RunChunk(std::move(input));
  const double seconds = obs::NowSeconds() - start;
  if (!output.ok()) {
    if (metrics != nullptr) {
      metrics->RecordFailure(stage_index, stage.name(),
                             output.status().code());
    }
    return AnnotateWithStage(stage.name(), output.status());
  }
  if (metrics != nullptr) {
    metrics->Record(stage_index, stage.name(), records_in, output->Count(),
                    MaxPartitionSize(*output), seconds);
  }
  RecordStageRegistryMetrics(stage.name(), seconds);
  return output;
}

}  // namespace internal

// A typed composition of stages. Built left to right:
//
//   auto chain = StageChain<Raw, Rec>(cleaning)
//                    .Then(enrichment).Then(trips).Then(projection);
//   Result<Dataset<Rec>> out = chain.RunChunk(std::move(chunk), &collector);
//
// The chain short-circuits at the first failing stage; the error Status
// is annotated with that stage's name. Stages are held by shared_ptr
// because one stage instance serves every chunk (it carries the
// chain-wide state: registry joins, geofence index, accumulated Stats).
template <typename In, typename Out>
class StageChain {
 public:
  explicit StageChain(std::shared_ptr<Stage<In, Out>> stage)
      : names_{std::string(stage->name())},
        run_([stage = std::move(stage)](
                 Dataset<In> input,
                 StageMetricsCollector* metrics) -> Result<Dataset<Out>> {
          return internal::RunStage(*stage, std::move(input), 0, metrics);
        }) {}

  // Appends a stage; consumes this chain.
  template <typename Next>
  StageChain<In, Next> Then(std::shared_ptr<Stage<Out, Next>> stage) && {
    std::vector<std::string> names = std::move(names_);
    names.push_back(std::string(stage->name()));
    const size_t index = names.size() - 1;
    auto run = [prev = std::move(run_), stage = std::move(stage), index](
                   Dataset<In> input,
                   StageMetricsCollector* metrics) -> Result<Dataset<Next>> {
      Result<Dataset<Out>> mid = prev(std::move(input), metrics);
      if (!mid.ok()) return mid.status();
      return internal::RunStage(*stage, std::move(mid).value(), index,
                                metrics);
    };
    return StageChain<In, Next>(std::move(names), std::move(run));
  }

  // Runs the whole chain on one chunk, recording per-stage metrics.
  // Errors carry the failing stage's name in the Status message.
  Result<Dataset<Out>> RunChunk(Dataset<In> chunk,
                                StageMetricsCollector* metrics) const {
    return run_(std::move(chunk), metrics);
  }

  size_t size() const { return names_.size(); }
  const std::vector<std::string>& stage_names() const { return names_; }

 private:
  template <typename I, typename O>
  friend class StageChain;

  using RunFn = std::function<Result<Dataset<Out>>(Dataset<In>,
                                                   StageMetricsCollector*)>;

  StageChain(std::vector<std::string> names, RunFn run)
      : names_(std::move(names)), run_(std::move(run)) {}

  std::vector<std::string> names_;
  RunFn run_;
};

}  // namespace pol::flow

#endif  // POL_FLOW_STAGE_H_
