#ifndef POL_OBS_CLOCK_H_
#define POL_OBS_CLOCK_H_

#include <cstdint>

// The monotonic clock of the observability layer. All wall-clock
// timing in library code goes through these (pollint's `direct-timing`
// rule flags raw std::chrono::steady_clock::now() outside src/obs/), so
// every duration in metrics, spans and run reports shares one epoch —
// process start — and trace timestamps line up across threads.
//
// These stay live under POL_OBS=OFF: StageMetrics wall-time accounting
// is a pipeline-result feature, not an obs-only one. Only metric
// recording and span capture compile to no-ops when disabled.

namespace pol::obs {

// Monotonic seconds since the process-local epoch.
double NowSeconds();

// Telemetry-grade fast clock: on x86_64 a raw TSC read scaled by a
// one-time calibration against NowSeconds (~200µs spin on first use),
// an alias for NowSeconds elsewhere. Shares the process epoch but may
// differ from NowSeconds by the calibration error (~0.03%), which the
// windowed consumers tolerate — use it on hot record paths (the
// serving query path reads it twice per call), not for durations that
// feed reports directly.
double NowSecondsFast();

// Monotonic microseconds since the process-local epoch (trace
// timestamps; Chrome's trace-event "ts" unit).
uint64_t NowMicros();

// Accumulates the scope's wall time into *sink on destruction:
//
//   { obs::ScopedTimer timer(&metrics.wall_seconds);  ...work... }
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink), start_(NowSeconds()) {}
  ~ScopedTimer() { *sink_ += NowSeconds() - start_; }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  double start_;
};

}  // namespace pol::obs

#endif  // POL_OBS_CLOCK_H_
