#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <string_view>
#include <system_error>
#include <utility>
#include <vector>

namespace pol::obs {
namespace {

constexpr int kMaxDepth = 128;

void AppendEscaped(std::string* out, std::string_view text) {
  out->push_back('"');
  for (const char c : text) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, double value, int64_t int_value,
                  bool is_int) {
  if (is_int) {
    *out += std::to_string(int_value);
    return;
  }
  if (!std::isfinite(value)) {
    // JSON has no NaN/Infinity; null is the least-wrong encoding.
    *out += "null";
    return;
  }
  char buf[64];
  // Shortest round-trip representation.
  const std::to_chars_result result =
      std::to_chars(buf, buf + sizeof(buf), value);
  out->append(buf, static_cast<size_t>(result.ptr - buf));
}

void AppendIndent(std::string* out, int indent, int depth) {
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * static_cast<size_t>(depth), ' ');
}

// ---------------------------------------------------------------------------
// Parser: strict recursive descent over a string_view cursor.

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool ParseDocument(Json* out, std::string* error) {
    SkipWhitespace();
    if (!ParseValue(out, 0)) {
      *error = error_ + " at offset " + std::to_string(pos_);
      return false;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      *error = "trailing characters after JSON document at offset " +
               std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  bool Fail(std::string message) {
    if (error_.empty()) error_ = std::move(message);
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  bool ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string value;
        if (!ParseString(&value)) return false;
        *out = Json(std::move(value));
        return true;
      }
      case 't':
        if (!ConsumeLiteral("true")) return Fail("bad literal");
        *out = Json(true);
        return true;
      case 'f':
        if (!ConsumeLiteral("false")) return Fail("bad literal");
        *out = Json(false);
        return true;
      case 'n':
        if (!ConsumeLiteral("null")) return Fail("bad literal");
        *out = Json();
        return true;
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(Json* out, int depth) {
    ++pos_;  // '{'
    *out = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return true;
    for (;;) {
      SkipWhitespace();
      std::string key;
      if (!ParseString(&key)) return Fail("expected object key");
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' after object key");
      SkipWhitespace();
      Json value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->Set(key, std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return true;
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(Json* out, int depth) {
    ++pos_;  // '['
    *out = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return true;
    for (;;) {
      SkipWhitespace();
      Json value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return true;
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          uint32_t code = 0;
          if (!ParseHex4(&code)) return false;
          if (code >= 0xd800 && code <= 0xdbff) {
            // Surrogate pair: require the low half.
            uint32_t low = 0;
            if (!ConsumeLiteral("\\u") || !ParseHex4(&low) || low < 0xdc00 ||
                low > 0xdfff) {
              return Fail("bad surrogate pair");
            }
            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
          } else if (code >= 0xdc00 && code <= 0xdfff) {
            return Fail("stray low surrogate");
          }
          AppendUtf8(out, code);
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("bad hex digit in \\u escape");
      }
    }
    *out = value;
    return true;
  }

  static void AppendUtf8(std::string* out, uint32_t code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xc0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xe0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else {
      out->push_back(static_cast<char>(0xf0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    }
  }

  bool ParseNumber(Json* out) {
    const size_t begin = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string_view token = text_.substr(begin, pos_ - begin);
    if (token.empty() || token == "-") return Fail("expected a value");
    // Integer when the token has no fraction/exponent and fits int64.
    if (token.find_first_of(".eE") == std::string_view::npos) {
      int64_t integer = 0;
      const std::from_chars_result result = std::from_chars(
          token.data(), token.data() + token.size(), integer);
      if (result.ec == std::errc() &&
          result.ptr == token.data() + token.size()) {
        *out = Json(integer);
        return true;
      }
    }
    double value = 0.0;
    const std::from_chars_result result =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (result.ec != std::errc() ||
        result.ptr != token.data() + token.size()) {
      return Fail("malformed number");
    }
    *out = Json(value);
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

Json::Json(uint64_t value) : type_(Type::kNumber) {
  if (value <= static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
    int_ = static_cast<int64_t>(value);
    is_int_ = true;
    num_ = static_cast<double>(int_);
  } else {
    num_ = static_cast<double>(value);
  }
}

int64_t Json::AsInt64(int64_t fallback) const {
  if (!is_number()) return fallback;
  if (is_int_) return int_;
  return static_cast<int64_t>(num_);
}

uint64_t Json::AsUint64(uint64_t fallback) const {
  if (!is_number()) return fallback;
  if (is_int_) return int_ < 0 ? fallback : static_cast<uint64_t>(int_);
  return num_ < 0 ? fallback : static_cast<uint64_t>(num_);
}

Json& Json::Set(std::string_view key, Json value) {
  type_ = Type::kObject;
  for (Member& member : members_) {
    if (member.first == key) {
      member.second = std::move(value);
      return member.second;
    }
  }
  members_.emplace_back(std::string(key), std::move(value));
  return members_.back().second;
}

const Json* Json::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  // Last value wins, matching common JSON library behavior on
  // duplicate keys from Parse (Set already deduplicates).
  for (auto it = members_.rbegin(); it != members_.rend(); ++it) {
    if (it->first == key) return &it->second;
  }
  return nullptr;
}

double Json::GetDouble(std::string_view key, double fallback) const {
  const Json* value = Find(key);
  return value != nullptr ? value->AsDouble(fallback) : fallback;
}

uint64_t Json::GetUint64(std::string_view key, uint64_t fallback) const {
  const Json* value = Find(key);
  return value != nullptr ? value->AsUint64(fallback) : fallback;
}

std::string Json::GetString(std::string_view key,
                            std::string_view fallback) const {
  const Json* value = Find(key);
  if (value == nullptr || !value->is_string()) return std::string(fallback);
  return value->AsString();
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      AppendNumber(out, num_, int_, is_int_);
      return;
    case Type::kString:
      AppendEscaped(out, str_);
      return;
    case Type::kArray: {
      if (array_.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out->push_back(',');
        if (indent >= 0) AppendIndent(out, indent, depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      if (indent >= 0) AppendIndent(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i != 0) out->push_back(',');
        if (indent >= 0) AppendIndent(out, indent, depth + 1);
        AppendEscaped(out, members_[i].first);
        out->push_back(':');
        if (indent >= 0) out->push_back(' ');
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (indent >= 0) AppendIndent(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

bool Json::Parse(std::string_view text, Json* out, std::string* error) {
  std::string local_error;
  Parser parser(text);
  const bool ok = parser.ParseDocument(out, &local_error);
  if (!ok && error != nullptr) *error = local_error;
  return ok;
}

}  // namespace pol::obs
