#ifndef POL_OBS_WINDOW_H_
#define POL_OBS_WINDOW_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/clock.h"
#include "obs/metrics.h"

// Time-windowed aggregation for the serving path (DESIGN.md §3.8): the
// batch-shaped Registry accumulates since process start, but a serving
// frontend answers "what is p99 *right now*" — so WindowedHistogram
// keeps a ring of the 32-bucket obs::Histogram rotated on a fixed tick
// (e.g. 60 × 1 s), and WindowedRate the same ring over plain counters
// for QPS / shed-rate. Trailing-window reads merge the live slots and
// estimate quantiles by log-linear interpolation inside a bucket, which
// is exact to one power-of-two bucket by construction.
//
// Concurrency: recording is lock-free — one relaxed epoch load on the
// fast path, a CAS only on the first sample of a new window (the CAS
// winner resets the slot before reuse). Two benign, bounded sample
// losses exist at rotation boundaries and are accepted by design: a
// straggler holding a now-recycled window drops its sample, and samples
// racing the winner's reset may be wiped. Both touch at most one
// window edge; trailing aggregates over >= 2 windows are unaffected in
// practice and no torn values are ever produced (every shared word is
// an atomic). Merged reads are relaxed like MetricsSnapshot: not a
// cross-slot atomic cut, which the consumers (gauges, SLO burn rates)
// tolerate.
//
// Under POL_OBS=OFF recording compiles to a no-op and every read
// returns an empty aggregate, mirroring obs/metrics.h.

namespace pol::obs {

// A merged view over the trailing windows of one WindowedHistogram.
struct WindowedSnapshot {
  uint64_t count = 0;
  uint64_t overflow_count = 0;  // Samples past the last finite bucket bound.
  double sum_seconds = 0.0;
  double min_seconds = 0.0;  // 0 when empty.
  double max_seconds = 0.0;
  // Trailing span the snapshot covers (windows asked for x tick).
  double span_seconds = 0.0;
  std::array<uint64_t, Histogram::kBucketCount> buckets{};
};

class WindowedHistogram {
 public:
  // `window_seconds` is the rotation tick; `window_count` the ring
  // size, so the longest trailing view spans window_seconds *
  // window_count. Both are clamped to sane minima (> 0, >= 2).
  explicit WindowedHistogram(double window_seconds = 1.0,
                             size_t window_count = 60);

  WindowedHistogram(const WindowedHistogram&) = delete;
  WindowedHistogram& operator=(const WindowedHistogram&) = delete;

  // The self-clocked form reads the fast (TSC) clock: recording is the
  // hot path; trailing reads stay on NowSeconds.
  void Record(double value_seconds) {
    if constexpr (kEnabled) {
      RecordAt(NowSecondsFast(), value_seconds);
    } else {
      (void)value_seconds;
    }
  }
  // Deterministic-time variant (tests drive the clock explicitly).
  void RecordAt(double now_seconds, double value_seconds);

  // Merge of the trailing `windows` windows ending at `now_seconds`
  // (0 or anything larger than the ring means "all of it").
  WindowedSnapshot TrailingSnapshotAt(double now_seconds,
                                      size_t windows = 0) const;
  WindowedSnapshot TrailingSnapshot(size_t windows = 0) const;

  // Quantile over the trailing windows: p in [0, 1] (clamped). Walks
  // the merged cumulative bucket counts and interpolates inside the
  // landing bucket — linearly for the sub-microsecond bucket 0,
  // log-linearly (value = lower * 2^frac) for the power-of-two buckets,
  // and toward the observed max inside the open-ended top bucket. The
  // estimate is clamped to the observed [min, max], and is within one
  // bucket of the exact sample quantile by construction. Returns 0
  // when the trailing windows are empty.
  double QuantileEstimateAt(double now_seconds, double p,
                            size_t windows = 0) const;
  double QuantileEstimate(double p, size_t windows = 0) const;
  static double QuantileFromSnapshot(const WindowedSnapshot& snapshot,
                                     double p);

  double window_seconds() const { return window_seconds_; }
  size_t window_count() const { return slots_.size(); }

 private:
  struct Slot {
    std::atomic<uint64_t> epoch{kNeverUsed};
    Histogram hist;
  };

  static constexpr uint64_t kNeverUsed = ~uint64_t{0};

  // Cached-reciprocal multiply instead of a divide on the record path.
  // Writers and readers share the same rounding, so windows stay
  // internally consistent.
  uint64_t EpochOf(double now_seconds) const {
    if (!(now_seconds > 0.0)) return 0;
    return static_cast<uint64_t>(now_seconds * inv_window_seconds_);
  }

  // Claims the slot for `epoch`, resetting it when this call rotates
  // the window in. Returns nullptr for a stale (already-recycled)
  // epoch, whose sample is dropped.
  Slot* AdvanceTo(uint64_t epoch);

  const double window_seconds_;
  const double inv_window_seconds_;
  std::vector<Slot> slots_;
};

// The counter sibling: event counts per window, for QPS / shed-rate /
// SLO good-vs-bad event streams. Same ring, same rotation rules.
class WindowedRate {
 public:
  explicit WindowedRate(double window_seconds = 1.0, size_t window_count = 60);

  WindowedRate(const WindowedRate&) = delete;
  WindowedRate& operator=(const WindowedRate&) = delete;

  void Increment(uint64_t delta = 1) {
    if constexpr (kEnabled) {
      IncrementAt(NowSecondsFast(), delta);
    } else {
      (void)delta;
    }
  }
  void IncrementAt(double now_seconds, uint64_t delta = 1);

  // Total events in the trailing `windows` windows (0 = whole ring).
  uint64_t TotalAt(double now_seconds, size_t windows = 0) const;
  uint64_t Total(size_t windows = 0) const;

  // TotalAt over the trailing span, as events per second.
  double RatePerSecondAt(double now_seconds, size_t windows = 0) const;
  double RatePerSecond(size_t windows = 0) const;

  double window_seconds() const { return window_seconds_; }
  size_t window_count() const { return slots_.size(); }

 private:
  struct Slot {
    std::atomic<uint64_t> epoch{kNeverUsed};
    std::atomic<uint64_t> count{0};
  };

  static constexpr uint64_t kNeverUsed = ~uint64_t{0};

  uint64_t EpochOf(double now_seconds) const {
    if (!(now_seconds > 0.0)) return 0;
    return static_cast<uint64_t>(now_seconds * inv_window_seconds_);
  }

  const double window_seconds_;
  const double inv_window_seconds_;
  std::vector<Slot> slots_;
};

}  // namespace pol::obs

#endif  // POL_OBS_WINDOW_H_
