#ifndef POL_OBS_METRICS_H_
#define POL_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

// common/mutex.h and common/thread_annotations.h live in the `base`
// layer (see tools/pollint/layers.txt): freestanding lock vocabulary
// the dependency-free obs layer may use without depending on common.
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/json.h"

// The process-wide metrics registry: monotonic counters, gauges and
// fixed-bucket latency histograms, named hierarchically with dots
// ("pipeline.chunks_folded", "stage.cleaning.chunk_seconds",
// "checkpoint.write_seconds" — see DESIGN.md §3.4 for the naming
// convention). Lookup by name takes the registry mutex once; the
// returned handle is a stable pointer and every recording operation on
// it is a relaxed atomic — the fast path holds no lock and allocates
// nothing, so instrumentation is safe from any thread including pool
// workers in the hottest stage loops.
//
// With the POL_OBS=OFF CMake option (POL_OBS_DISABLED defined) the
// whole layer compiles down to no-ops: recording is an empty inline
// function, lookups return a shared dummy handle without touching the
// registry, and snapshots are empty. Call sites need no #ifdefs.

namespace pol::obs {

#if defined(POL_OBS_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

// A monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    if constexpr (kEnabled) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    } else {
      (void)delta;
    }
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// A point-in-time level (queue depth, in-flight chunks).
class Gauge {
 public:
  void Set(int64_t value) {
    if constexpr (kEnabled) {
      value_.store(value, std::memory_order_relaxed);
    } else {
      (void)value;
    }
  }
  void Add(int64_t delta) {
    if constexpr (kEnabled) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    } else {
      (void)delta;
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// A fixed-bucket latency histogram over seconds. Bucket 0 holds
// sub-microsecond samples; bucket i (i >= 1) holds samples in
// [2^(i-1), 2^i) microseconds; the last bucket absorbs everything
// longer (~2^30 us ≈ 18 minutes and up). Recording is two relaxed
// adds plus two bounded CAS loops for min/max — no locks, no floats in
// shared state (durations accumulate as integer nanoseconds).
//
// Samples past the last finite bucket bound (>= 2^31 us, where the
// saturating BucketIndex starts folding everything into the top
// bucket) are additionally counted in overflow_count(): quantile
// estimates over the top bucket would otherwise be silently
// pessimistic, so consumers interpolate toward the observed max and
// report the overflow explicitly (MetricsSnapshot, polinv report).
class Histogram {
 public:
  static constexpr size_t kBucketCount = 32;

  void Record(double seconds) {
    if constexpr (kEnabled) {
      if (!(seconds >= 0.0)) seconds = 0.0;  // NaN/negative clamp.
      const auto nanos = static_cast<uint64_t>(seconds * 1e9);
      const uint64_t micros = nanos / 1000;
      buckets_[BucketIndex(micros)].fetch_add(1, std::memory_order_relaxed);
      if ((micros >> (kBucketCount - 1)) != 0) {  // >= 2^31 us.
        overflow_count_.fetch_add(1, std::memory_order_relaxed);
      }
      count_.fetch_add(1, std::memory_order_relaxed);
      sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
      UpdateMin(nanos);
      UpdateMax(nanos);
    } else {
      (void)seconds;
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum_seconds() const {
    return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) *
           1e-9;
  }
  double min_seconds() const {
    const uint64_t nanos = min_nanos_.load(std::memory_order_relaxed);
    return nanos == kNoSample ? 0.0 : static_cast<double>(nanos) * 1e-9;
  }
  double max_seconds() const {
    return static_cast<double>(max_nanos_.load(std::memory_order_relaxed)) *
           1e-9;
  }
  uint64_t bucket(size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }
  // Samples beyond the last finite bucket bound (see the class
  // comment); always <= bucket(kBucketCount - 1).
  uint64_t overflow_count() const {
    return overflow_count_.load(std::memory_order_relaxed);
  }

  // Inclusive lower bound of a bucket, in seconds.
  static double BucketLowerBoundSeconds(size_t index) {
    if (index == 0) return 0.0;
    return static_cast<double>(uint64_t{1} << (index - 1)) * 1e-6;
  }

  static size_t BucketIndex(uint64_t micros) {
    if (micros == 0) return 0;
    const auto width = static_cast<size_t>(std::bit_width(micros));
    return width < kBucketCount ? width : kBucketCount - 1;
  }

  void Reset() {
    for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    overflow_count_.store(0, std::memory_order_relaxed);
    sum_nanos_.store(0, std::memory_order_relaxed);
    min_nanos_.store(kNoSample, std::memory_order_relaxed);
    max_nanos_.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr uint64_t kNoSample = ~uint64_t{0};

  void UpdateMin(uint64_t nanos) {
    uint64_t seen = min_nanos_.load(std::memory_order_relaxed);
    while (nanos < seen && !min_nanos_.compare_exchange_weak(
                               seen, nanos, std::memory_order_relaxed)) {
    }
  }
  void UpdateMax(uint64_t nanos) {
    uint64_t seen = max_nanos_.load(std::memory_order_relaxed);
    while (nanos > seen && !max_nanos_.compare_exchange_weak(
                               seen, nanos, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<uint64_t>, kBucketCount> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> overflow_count_{0};
  std::atomic<uint64_t> sum_nanos_{0};
  std::atomic<uint64_t> min_nanos_{kNoSample};
  std::atomic<uint64_t> max_nanos_{0};
};

// A point-in-time copy of every registered metric, safe to serialize
// while recording continues (individual loads are relaxed; the snapshot
// is not a cross-metric atomic cut, which reports tolerate).
struct MetricsSnapshot {
  struct HistogramEntry {
    std::string name;
    uint64_t count = 0;
    uint64_t overflow_count = 0;  // Samples past the last finite bound.
    double sum_seconds = 0.0;
    double min_seconds = 0.0;
    double max_seconds = 0.0;
    std::array<uint64_t, Histogram::kBucketCount> buckets{};
  };
  std::vector<std::pair<std::string, uint64_t>> counters;  // Sorted by name.
  std::vector<std::pair<std::string, int64_t>> gauges;     // Sorted by name.
  std::vector<HistogramEntry> histograms;                  // Sorted by name.
};

// Renders a snapshot as the "metrics" section of the run report:
// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum
// seconds, min/max, nonzero buckets keyed by lower bound}}}.
Json MetricsSnapshotToJson(const MetricsSnapshot& snapshot);

class Registry {
 public:
  // The process-wide registry every instrumentation site records into.
  static Registry& Global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Finds or creates a metric. The returned pointer is stable for the
  // registry's lifetime; call once per site and cache when the name is
  // fixed. Registering the same name as two different kinds returns
  // distinct metrics (kind-spaced); avoid by convention.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  // Zeroes every registered metric (handles stay valid). Test isolation
  // and per-run deltas; concurrent recording during a reset lands in
  // either the old or the new epoch.
  void Reset();

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      POL_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      POL_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      POL_GUARDED_BY(mutex_);
};

}  // namespace pol::obs

#endif  // POL_OBS_METRICS_H_
