#include "obs/querylog.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pol::obs {
namespace {

// Doubles in a wide event may legitimately be inf (no deadline math
// gone wrong) or NaN under fault storms; the JSON model carries
// neither, so they export as the "no value" sentinel.
double Finite(double value) { return std::isfinite(value) ? value : -1.0; }

}  // namespace

Json QueryEventToJson(const QueryEvent& event) {
  Json out = Json::Object();
  out.Set("id", Json(event.id));
  out.Set("class", Json(event.query_class));
  out.Set("op", Json(event.op));
  out.Set("status", Json(event.status));
  out.Set("ok", Json(event.ok));
  out.Set("queue_wait_seconds", Json(Finite(event.queue_wait_seconds)));
  out.Set("scan_seconds", Json(Finite(event.scan_seconds)));
  out.Set("deadline_remaining_seconds",
          Json(Finite(event.deadline_remaining_seconds)));
  out.Set("snapshot_id", Json(event.snapshot_id));
  out.Set("summaries_visited", Json(event.summaries_visited));
  return out;
}

QueryLog::QueryLog(QueryLogOptions options)
    : options_([options]() mutable {
        if (options.notable_capacity == 0) options.notable_capacity = 1;
        if (options.sampled_capacity == 0) options.sampled_capacity = 1;
        return options;
      }()) {
  if constexpr (kEnabled) {
    MutexLock lock(mutex_);
    notable_.reserve(options_.notable_capacity);
    sampled_.reserve(options_.sampled_capacity);
  }
}

uint64_t QueryLog::NextId() {
  if constexpr (!kEnabled) return 0;
  return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
}

uint64_t QueryLog::Mix(uint64_t value) {
  uint64_t z = value * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

void QueryLog::Record(const QueryEvent& event) {
  if constexpr (!kEnabled) {
    (void)event;
    return;
  }
  if (event.ok) {
    ok_.fetch_add(1, std::memory_order_relaxed);
  } else {
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  const bool slow = event.scan_seconds >= options_.slow_seconds;
  if (slow) slow_.fetch_add(1, std::memory_order_relaxed);

  if (!event.ok || slow) {
    // Notable ring: overwrite the oldest once full, so the freshest
    // incidents always survive.
    MutexLock lock(mutex_);
    if (notable_.size() < options_.notable_capacity) {
      notable_.push_back(event);
    } else {
      notable_[notable_next_] = event;
    }
    notable_next_ = (notable_next_ + 1) % options_.notable_capacity;
    return;
  }

  // Healthy queries flow through a uniform reservoir: the counter is
  // claimed outside the lock, so the decision which slot (if any) an
  // event lands in never serializes recording threads that lose the
  // draw.
  const uint64_t seen = sampled_seen_.fetch_add(1, std::memory_order_relaxed);
  if (seen < options_.sampled_capacity) {
    MutexLock lock(mutex_);
    if (sampled_.size() <= static_cast<size_t>(seen)) {
      sampled_.resize(static_cast<size_t>(seen) + 1);
    }
    sampled_[static_cast<size_t>(seen)] = event;
    return;
  }
  // Lemire bounded mapping of the mixed draw into [0, seen]: a 128-bit
  // multiply-shift instead of a hardware divide on the hot path.
  const uint64_t draw = static_cast<uint64_t>(
      (static_cast<unsigned __int128>(Mix(seen)) * (seen + 1)) >> 64);
  if (draw < options_.sampled_capacity) {
    MutexLock lock(mutex_);
    if (static_cast<size_t>(draw) < sampled_.size()) {
      sampled_[static_cast<size_t>(draw)] = event;
    }
  }
}

QueryLog::Totals QueryLog::totals() const {
  Totals totals;
  totals.ok = ok_.load(std::memory_order_relaxed);
  totals.errors = errors_.load(std::memory_order_relaxed);
  totals.slow = slow_.load(std::memory_order_relaxed);
  totals.events = totals.ok + totals.errors;
  return totals;
}

namespace {

void SortById(std::vector<QueryEvent>* events) {
  std::sort(events->begin(), events->end(),
            [](const QueryEvent& a, const QueryEvent& b) {
              return a.id < b.id;
            });
}

}  // namespace

std::vector<QueryEvent> QueryLog::NotableEvents() const {
  std::vector<QueryEvent> out;
  {
    MutexLock lock(mutex_);
    out = notable_;
  }
  SortById(&out);
  return out;
}

std::vector<QueryEvent> QueryLog::SampledEvents() const {
  std::vector<QueryEvent> out;
  {
    MutexLock lock(mutex_);
    out = sampled_;
  }
  SortById(&out);
  return out;
}

std::string QueryLog::ExportJsonl() const {
  std::vector<QueryEvent> all;
  {
    MutexLock lock(mutex_);
    all.reserve(notable_.size() + sampled_.size());
    all.insert(all.end(), notable_.begin(), notable_.end());
    all.insert(all.end(), sampled_.begin(), sampled_.end());
  }
  SortById(&all);
  std::string out;
  for (const QueryEvent& event : all) {
    out += QueryEventToJson(event).Dump();
    out += '\n';
  }
  return out;
}

}  // namespace pol::obs
