#include "obs/openmetrics.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/report.h"

namespace pol::obs {
namespace {

void AppendUint(std::string* out, uint64_t value) {
  *out += std::to_string(value);
}

void AppendDouble(std::string* out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  *out += buffer;
}

void AppendType(std::string* out, const std::string& name,
                std::string_view type) {
  *out += "# TYPE ";
  *out += name;
  *out += ' ';
  *out += type;
  *out += '\n';
}

}  // namespace

std::string OpenMetricsName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(legal ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string RenderOpenMetrics(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string metric = OpenMetricsName(name);
    AppendType(&out, metric, "counter");
    out += metric;
    out += "_total ";
    AppendUint(&out, value);
    out += '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string metric = OpenMetricsName(name);
    AppendType(&out, metric, "gauge");
    out += metric;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }
  for (const MetricsSnapshot::HistogramEntry& entry : snapshot.histograms) {
    const std::string metric = OpenMetricsName(entry.name);
    AppendType(&out, metric, "histogram");
    // Cumulative buckets: one line per non-empty bucket (keyed by its
    // *upper* bound, exposition-format style) plus the mandatory +Inf.
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
      if (entry.buckets[i] == 0) continue;
      cumulative += entry.buckets[i];
      out += metric;
      out += "_bucket{le=\"";
      if (i + 1 < Histogram::kBucketCount) {
        AppendDouble(&out, Histogram::BucketLowerBoundSeconds(i + 1));
      } else {
        out += "+Inf";
      }
      out += "\"} ";
      AppendUint(&out, cumulative);
      out += '\n';
    }
    if (cumulative != entry.count) {
      // Top-bucket samples (or a racing snapshot) left the +Inf line
      // unemitted or short; close the series at the true count.
      out += metric;
      out += "_bucket{le=\"+Inf\"} ";
      AppendUint(&out, entry.count);
      out += '\n';
    }
    out += metric;
    out += "_sum ";
    AppendDouble(&out, entry.sum_seconds);
    out += '\n';
    out += metric;
    out += "_count ";
    AppendUint(&out, entry.count);
    out += '\n';
  }
  out += "# EOF\n";
  return out;
}

bool WriteOpenMetricsFile(const std::string& path,
                          const MetricsSnapshot& snapshot,
                          std::string* error) {
  return WriteTextFileAtomic(path, RenderOpenMetrics(snapshot), error);
}

std::vector<OpenMetricsSample> ParseOpenMetrics(std::string_view text) {
  std::vector<OpenMetricsSample> samples;
  size_t begin = 0;
  while (begin <= text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(begin, end - begin);
    begin = end + 1;
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    if (line.empty() || line.front() == '#') continue;

    OpenMetricsSample sample;
    std::string_view rest;
    const size_t brace = line.find('{');
    const size_t space = line.find(' ');
    if (brace != std::string_view::npos &&
        (space == std::string_view::npos || brace < space)) {
      sample.name = std::string(line.substr(0, brace));
      const size_t close = line.find('}', brace);
      if (close == std::string_view::npos) continue;  // Malformed.
      std::string_view labels = line.substr(brace + 1, close - brace - 1);
      while (!labels.empty()) {
        size_t comma = labels.find(',');
        std::string_view one = labels.substr(0, comma);
        labels = comma == std::string_view::npos
                     ? std::string_view()
                     : labels.substr(comma + 1);
        const size_t eq = one.find("=\"");
        if (eq == std::string_view::npos || one.size() < eq + 3 ||
            one.back() != '"') {
          continue;
        }
        sample.labels.emplace_back(
            std::string(one.substr(0, eq)),
            std::string(one.substr(eq + 2, one.size() - eq - 3)));
      }
      rest = line.substr(close + 1);
    } else {
      if (space == std::string_view::npos) continue;
      sample.name = std::string(line.substr(0, space));
      rest = line.substr(space);
    }
    while (!rest.empty() && (rest.front() == ' ' || rest.front() == '\t')) {
      rest.remove_prefix(1);
    }
    if (rest.empty()) continue;
    const std::string value(rest.substr(0, rest.find(' ')));
    if (value == "+Inf") {
      sample.value = 1e308;
    } else {
      char* parsed_end = nullptr;
      sample.value = std::strtod(value.c_str(), &parsed_end);
      if (parsed_end == value.c_str()) continue;  // Not a number.
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

const OpenMetricsSample* FindSample(
    const std::vector<OpenMetricsSample>& samples, std::string_view name) {
  for (const OpenMetricsSample& sample : samples) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

}  // namespace pol::obs
