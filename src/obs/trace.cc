#include "obs/trace.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "obs/json.h"

namespace pol::obs {

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* const kGlobal = new TraceRecorder();  // NOLINT(pollint:naked-new): leaked singleton, safe at exit.
  return *kGlobal;
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  // One buffer per (recorder, thread). The thread_local caches the
  // global recorder's buffer only — other recorder instances (tests)
  // take the slow path every time, which is fine off the hot path.
  thread_local ThreadBuffer* global_buffer = nullptr;
  const bool is_global = this == &Global();
  if (is_global && global_buffer != nullptr) return global_buffer;
  auto buffer = std::make_shared<ThreadBuffer>();
  {
    MutexLock lock(mutex_);
    buffer->tid = next_tid_++;
    buffers_.push_back(buffer);
  }
  // The shared_ptr in buffers_ keeps it alive past thread exit.
  if (is_global) global_buffer = buffer.get();
  return buffer.get();
}

void TraceRecorder::Record(std::string name, uint64_t ts_micros,
                           uint64_t dur_micros) {
  if constexpr (!kEnabled) {
    (void)name;
    (void)ts_micros;
    (void)dur_micros;
    return;
  }
  ThreadBuffer* buffer = BufferForThisThread();
  TraceEvent event;
  event.name = std::move(name);
  event.ts_micros = ts_micros;
  event.dur_micros = dur_micros;
  event.tid = buffer->tid;
  MutexLock lock(buffer->mutex);
  buffer->events.push_back(std::move(event));
}

void TraceRecorder::Clear() {
  MutexLock lock(mutex_);
  for (const std::shared_ptr<ThreadBuffer>& buffer : buffers_) {
    MutexLock buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<TraceEvent> events;
  {
    MutexLock lock(mutex_);
    for (const std::shared_ptr<ThreadBuffer>& buffer : buffers_) {
      MutexLock buffer_lock(buffer->mutex);
      events.insert(events.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_micros != b.ts_micros) {
                return a.ts_micros < b.ts_micros;
              }
              return a.tid < b.tid;
            });
  return events;
}

size_t TraceRecorder::event_count() const {
  size_t count = 0;
  MutexLock lock(mutex_);
  for (const std::shared_ptr<ThreadBuffer>& buffer : buffers_) {
    MutexLock buffer_lock(buffer->mutex);
    count += buffer->events.size();
  }
  return count;
}

std::string TraceRecorder::ExportChromeTraceJson() const {
  Json document = Json::Object();
  Json trace_events = Json::Array();
  for (const TraceEvent& event : Events()) {
    Json entry = Json::Object();
    entry.Set("name", Json(event.name));
    entry.Set("cat", Json("pol"));
    entry.Set("ph", Json("X"));
    entry.Set("ts", Json(event.ts_micros));
    entry.Set("dur", Json(event.dur_micros));
    entry.Set("pid", Json(int64_t{1}));
    entry.Set("tid", Json(uint64_t{event.tid}));
    trace_events.Append(std::move(entry));
  }
  document.Set("traceEvents", std::move(trace_events));
  document.Set("displayTimeUnit", Json("ms"));
  return document.Dump();
}

}  // namespace pol::obs
