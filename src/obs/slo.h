#ifndef POL_OBS_SLO_H_
#define POL_OBS_SLO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/window.h"

// Declarative SLOs over the windowed telemetry (DESIGN.md §3.8):
// "availability >= 99.9%" over a good/bad WindowedRate pair, or "p99
// latency <= X" over a WindowedHistogram, each evaluated over a fast
// and a slow trailing window with the standard multi-window burn-rate
// rule.
//
// Burn rate is "how fast is the error budget being spent": with budget
// b = 1 - objective (availability) or 1 - quantile (latency), the burn
// over a window is observed_bad_fraction / b — 1.0 means exactly
// on-budget, >> 1 means the objective will be blown well before the
// compliance period ends. An SLO is *burning* only when BOTH windows
// are at or over the threshold: the fast window (e.g. 5 ticks) makes
// the signal react in seconds, the slow window (e.g. 60) keeps a brief
// spike from paging, and requiring both is what makes the alert quiet
// AND responsive (the Monarch/SRE-workbook multi-window policy).
//
// Evaluation publishes gauges into the global Registry under
// `<prefix><name>.burning` (0/1), `.burn_fast_milli` and
// `.burn_slow_milli` (burn x 1000, saturated), plus a
// `<prefix><name>.breaches` counter incremented on each transition
// into burning — so run reports and the OpenMetrics export carry SLO
// state with no extra plumbing.
//
// Threading: Add() during setup, Evaluate*() from one thread at a time
// (the ServingGuard exporter thread in production). The windows being
// read are concurrently written by recording threads, which is safe;
// only the tracker's own transition state is single-threaded.

namespace pol::obs {

enum class SloKind {
  kAvailability = 0,    // good/bad event streams.
  kLatencyQuantile = 1  // a latency quantile against a bound.
};

struct SloSpec {
  std::string name;  // Metric-path component, e.g. "availability".
  SloKind kind = SloKind::kAvailability;
  // kAvailability: target good fraction (0.999 = "99.9% of calls OK").
  // kLatencyQuantile: target quantile (0.99 = "p99 under threshold").
  double objective = 0.999;
  // kLatencyQuantile only: the latency bound the quantile must hold.
  double threshold_seconds = 0.0;
  size_t fast_windows = 5;
  size_t slow_windows = 60;
  // Both burns must reach this to count as burning.
  double burn_threshold = 1.0;
};

// Non-owning bindings; the windows must outlive the tracker.
struct SloSource {
  const WindowedRate* good = nullptr;          // kAvailability.
  const WindowedRate* bad = nullptr;           // kAvailability.
  const WindowedHistogram* latency = nullptr;  // kLatencyQuantile.
};

struct SloStatus {
  std::string name;
  double burn_fast = 0.0;
  double burn_slow = 0.0;
  bool burning = false;
  uint64_t breaches = 0;  // Cumulative transitions into burning.
};

class SloTracker {
 public:
  // `gauge_prefix` prefixes every published metric name, e.g.
  // "serving.slo." -> "serving.slo.availability.burning".
  explicit SloTracker(std::string gauge_prefix);

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  void Add(SloSpec spec, SloSource source);

  // Evaluates every SLO at `now`, publishes the gauge set, and returns
  // the per-SLO status (same order as Add).
  std::vector<SloStatus> EvaluateAt(double now_seconds);
  std::vector<SloStatus> Evaluate();

  size_t size() const { return slos_.size(); }

 private:
  struct Bound {
    SloSpec spec;
    SloSource source;
    Gauge* burning_gauge = nullptr;
    Gauge* burn_fast_gauge = nullptr;
    Gauge* burn_slow_gauge = nullptr;
    Counter* breaches_counter = nullptr;
    bool was_burning = false;
    uint64_t breach_count = 0;
  };

  static double BurnRateAt(const Bound& bound, double now_seconds,
                           size_t windows);

  const std::string prefix_;
  std::vector<Bound> slos_;
};

}  // namespace pol::obs

#endif  // POL_OBS_SLO_H_
