#include "obs/slo.h"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/clock.h"

namespace pol::obs {
namespace {

constexpr double kMinBudget = 1e-9;       // Guard against objective = 1.
constexpr double kMaxBurnMilli = 1e15;    // Gauge saturation.

// Samples at or under `threshold` in a merged snapshot, with the same
// in-bucket interpolation the quantile estimate uses (linear in bucket
// 0, log-linear elsewhere) so the two stay consistent.
double CountAtMost(const WindowedSnapshot& snapshot, double threshold) {
  double at_most = 0.0;
  for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
    const uint64_t in_bucket = snapshot.buckets[i];
    if (in_bucket == 0) continue;
    const double lower = Histogram::BucketLowerBoundSeconds(i);
    double upper;
    if (i + 1 < Histogram::kBucketCount) {
      upper = Histogram::BucketLowerBoundSeconds(i + 1);
    } else {
      upper = std::max(snapshot.max_seconds, lower * 2.0);
    }
    if (threshold >= upper) {
      at_most += static_cast<double>(in_bucket);
    } else if (threshold > lower) {
      double frac;
      if (i == 0) {
        frac = threshold / 1e-6;
      } else {
        frac = std::log(threshold / lower) / std::log(upper / lower);
      }
      at_most += frac * static_cast<double>(in_bucket);
    }
  }
  return at_most;
}

int64_t BurnMilli(double burn) {
  double milli = burn * 1000.0;
  if (!(milli >= 0.0)) milli = 0.0;
  if (milli > kMaxBurnMilli) milli = kMaxBurnMilli;
  return static_cast<int64_t>(std::llround(milli));
}

}  // namespace

SloTracker::SloTracker(std::string gauge_prefix)
    : prefix_(std::move(gauge_prefix)) {}

void SloTracker::Add(SloSpec spec, SloSource source) {
  Bound bound;
  const std::string base = prefix_ + spec.name;
  auto& registry = Registry::Global();
  bound.burning_gauge = registry.gauge(base + ".burning");
  bound.burn_fast_gauge = registry.gauge(base + ".burn_fast_milli");
  bound.burn_slow_gauge = registry.gauge(base + ".burn_slow_milli");
  bound.breaches_counter = registry.counter(base + ".breaches");
  bound.burning_gauge->Set(0);
  bound.burn_fast_gauge->Set(0);
  bound.burn_slow_gauge->Set(0);
  bound.spec = std::move(spec);
  bound.source = source;
  slos_.push_back(std::move(bound));
}

double SloTracker::BurnRateAt(const Bound& bound, double now_seconds,
                              size_t windows) {
  const SloSpec& spec = bound.spec;
  const double budget = std::max(1.0 - spec.objective, kMinBudget);
  if (spec.kind == SloKind::kAvailability) {
    if (bound.source.good == nullptr || bound.source.bad == nullptr) {
      return 0.0;
    }
    const double good = static_cast<double>(
        bound.source.good->TotalAt(now_seconds, windows));
    const double bad = static_cast<double>(
        bound.source.bad->TotalAt(now_seconds, windows));
    const double total = good + bad;
    if (total <= 0.0) return 0.0;  // No traffic spends no budget.
    return (bad / total) / budget;
  }
  if (bound.source.latency == nullptr) return 0.0;
  const WindowedSnapshot snapshot =
      bound.source.latency->TrailingSnapshotAt(now_seconds, windows);
  if (snapshot.count == 0) return 0.0;
  const double over_fraction =
      1.0 - CountAtMost(snapshot, spec.threshold_seconds) /
                static_cast<double>(snapshot.count);
  return std::max(over_fraction, 0.0) / budget;
}

std::vector<SloStatus> SloTracker::EvaluateAt(double now_seconds) {
  std::vector<SloStatus> out;
  out.reserve(slos_.size());
  for (Bound& bound : slos_) {
    SloStatus status;
    status.name = bound.spec.name;
    status.burn_fast = BurnRateAt(bound, now_seconds, bound.spec.fast_windows);
    status.burn_slow = BurnRateAt(bound, now_seconds, bound.spec.slow_windows);
    status.burning = status.burn_fast >= bound.spec.burn_threshold &&
                     status.burn_slow >= bound.spec.burn_threshold;
    if (status.burning && !bound.was_burning) {
      bound.breaches_counter->Increment();
      ++bound.breach_count;
    }
    bound.was_burning = status.burning;
    status.breaches = bound.breach_count;
    bound.burning_gauge->Set(status.burning ? 1 : 0);
    bound.burn_fast_gauge->Set(BurnMilli(status.burn_fast));
    bound.burn_slow_gauge->Set(BurnMilli(status.burn_slow));
    out.push_back(std::move(status));
  }
  return out;
}

std::vector<SloStatus> SloTracker::Evaluate() {
  return EvaluateAt(NowSeconds());
}

}  // namespace pol::obs
