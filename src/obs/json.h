#ifndef POL_OBS_JSON_H_
#define POL_OBS_JSON_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

// A minimal JSON document model for the observability layer: the run
// report, the Chrome trace export, the metrics snapshot and the bench
// summaries all serialize through it, and `polinv report` parses run
// reports back with it.
//
// Deliberately small and dependency-free (obs sits below common in the
// layering so even the logging/quarantine layers can link it): objects
// preserve insertion order (deterministic output for byte-stable
// reports), numbers round-trip int64 exactly and doubles via shortest
// round-trip formatting, and Parse is a strict recursive-descent reader
// with a depth limit. Not a general-purpose JSON library: no comments,
// no NaN/Infinity, duplicate keys keep the last value on lookup.

namespace pol::obs {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Member = std::pair<std::string, Json>;

  Json() : type_(Type::kNull) {}
  Json(bool value) : type_(Type::kBool), bool_(value) {}  // NOLINT
  Json(double value) : type_(Type::kNumber), num_(value) {}  // NOLINT
  Json(int value) : Json(static_cast<int64_t>(value)) {}  // NOLINT
  Json(int64_t value)  // NOLINT
      : type_(Type::kNumber), num_(static_cast<double>(value)),
        int_(value), is_int_(true) {}
  Json(uint64_t value);  // NOLINT: falls back to double above int64 max.
  Json(const char* value) : type_(Type::kString), str_(value) {}  // NOLINT
  Json(std::string value)  // NOLINT
      : type_(Type::kString), str_(std::move(value)) {}
  Json(std::string_view value)  // NOLINT
      : type_(Type::kString), str_(value) {}

  static Json Array() {
    Json value;
    value.type_ = Type::kArray;
    return value;
  }
  static Json Object() {
    Json value;
    value.type_ = Type::kObject;
    return value;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Scalar accessors with a fallback for wrong-type access; report
  // consumers stay total without exceptions.
  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsDouble(double fallback = 0.0) const {
    return is_number() ? num_ : fallback;
  }
  int64_t AsInt64(int64_t fallback = 0) const;
  uint64_t AsUint64(uint64_t fallback = 0) const;
  const std::string& AsString() const {
    static const std::string* const kEmpty = new std::string();  // NOLINT(pollint:naked-new): leaked empty-string sentinel.
    return is_string() ? str_ : *kEmpty;
  }

  // Array access. Append coerces a null/scalar into nothing — callers
  // must construct with Json::Array() first.
  Json& Append(Json value) {
    array_.push_back(std::move(value));
    return array_.back();
  }
  size_t size() const {
    return is_array() ? array_.size() : (is_object() ? members_.size() : 0);
  }
  const Json& at(size_t index) const { return array_[index]; }
  const std::vector<Json>& items() const { return array_; }

  // Object access. Set keeps insertion order and overwrites an existing
  // key in place; Find returns nullptr when absent (or not an object).
  Json& Set(std::string_view key, Json value);
  const Json* Find(std::string_view key) const;
  const std::vector<Member>& members() const { return members_; }

  // Convenience lookups for report consumers.
  double GetDouble(std::string_view key, double fallback = 0.0) const;
  uint64_t GetUint64(std::string_view key, uint64_t fallback = 0) const;
  std::string GetString(std::string_view key,
                        std::string_view fallback = {}) const;

  // Serializes the document. indent < 0 renders compact one-line JSON;
  // indent >= 0 pretty-prints with that many spaces per level.
  std::string Dump(int indent = -1) const;

  // Strict parse of one JSON document (trailing garbage is an error).
  // On failure returns false and describes the problem in *error.
  static bool Parse(std::string_view text, Json* out, std::string* error);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  int64_t int_ = 0;
  bool is_int_ = false;
  std::string str_;
  std::vector<Json> array_;
  std::vector<Member> members_;
};

}  // namespace pol::obs

#endif  // POL_OBS_JSON_H_
