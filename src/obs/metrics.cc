#include "obs/metrics.h"

#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "common/mutex.h"

namespace pol::obs {
namespace {

// One shared handle per kind for POL_OBS=OFF builds: sites keep a valid
// pointer, every operation on it is an inline no-op, and the registry
// maps stay empty.
template <typename Metric>
Metric* Dummy() {
  static Metric* const kDummy = new Metric();  // NOLINT(pollint:naked-new): leaked shared no-op handle.
  return kDummy;
}

// Registry lookup body; the caller holds the registry mutex (the three
// public accessors lock, so the guarded map access is inside the
// analyzed scope instead of laundered through a reference parameter).
template <typename Metric>
Metric* FindOrCreateLocked(
    std::map<std::string, std::unique_ptr<Metric>, std::less<>>& metrics,
    std::string_view name) {
  const auto it = metrics.find(name);
  if (it != metrics.end()) return it->second.get();
  auto metric = std::make_unique<Metric>();
  Metric* handle = metric.get();
  metrics.emplace(std::string(name), std::move(metric));
  return handle;
}

}  // namespace

Registry& Registry::Global() {
  static Registry* const kGlobal = new Registry();  // NOLINT(pollint:naked-new): leaked singleton, safe at exit.
  return *kGlobal;
}

Counter* Registry::counter(std::string_view name) {
  if constexpr (!kEnabled) {
    (void)name;
    return Dummy<Counter>();
  }
  MutexLock lock(mutex_);
  return FindOrCreateLocked(counters_, name);
}

Gauge* Registry::gauge(std::string_view name) {
  if constexpr (!kEnabled) {
    (void)name;
    return Dummy<Gauge>();
  }
  MutexLock lock(mutex_);
  return FindOrCreateLocked(gauges_, name);
}

Histogram* Registry::histogram(std::string_view name) {
  if constexpr (!kEnabled) {
    (void)name;
    return Dummy<Histogram>();
  }
  MutexLock lock(mutex_);
  return FindOrCreateLocked(histograms_, name);
}

MetricsSnapshot Registry::Snapshot() const {
  MetricsSnapshot snapshot;
  MutexLock lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramEntry entry;
    entry.name = name;
    entry.count = histogram->count();
    entry.overflow_count = histogram->overflow_count();
    entry.sum_seconds = histogram->sum_seconds();
    entry.min_seconds = histogram->min_seconds();
    entry.max_seconds = histogram->max_seconds();
    for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
      entry.buckets[i] = histogram->bucket(i);
    }
    snapshot.histograms.push_back(std::move(entry));
  }
  return snapshot;
}

void Registry::Reset() {
  MutexLock lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

Json MetricsSnapshotToJson(const MetricsSnapshot& snapshot) {
  Json out = Json::Object();
  Json counters = Json::Object();
  for (const auto& [name, value] : snapshot.counters) {
    counters.Set(name, Json(value));
  }
  out.Set("counters", std::move(counters));
  Json gauges = Json::Object();
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.Set(name, Json(value));
  }
  out.Set("gauges", std::move(gauges));
  Json histograms = Json::Object();
  for (const MetricsSnapshot::HistogramEntry& entry : snapshot.histograms) {
    Json histogram = Json::Object();
    histogram.Set("count", Json(entry.count));
    // Sparse like the buckets: only present when samples actually fell
    // past the last finite bucket bound.
    if (entry.overflow_count > 0) {
      histogram.Set("overflow_count", Json(entry.overflow_count));
    }
    histogram.Set("sum_seconds", Json(entry.sum_seconds));
    histogram.Set("min_seconds", Json(entry.min_seconds));
    histogram.Set("max_seconds", Json(entry.max_seconds));
    // Sparse: only non-empty buckets, keyed by their lower bound in
    // seconds, so quiet histograms stay one line.
    Json buckets = Json::Object();
    for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
      if (entry.buckets[i] == 0) continue;
      buckets.Set(std::to_string(Histogram::BucketLowerBoundSeconds(i)),
                  Json(entry.buckets[i]));
    }
    histogram.Set("buckets", std::move(buckets));
    histograms.Set(entry.name, std::move(histogram));
  }
  out.Set("histograms", std::move(histograms));
  return out;
}

}  // namespace pol::obs
