#include "obs/clock.h"

#include <chrono>

namespace pol::obs {
namespace {

std::chrono::steady_clock::time_point ProcessEpoch() {
  static const std::chrono::steady_clock::time_point kEpoch =
      std::chrono::steady_clock::now();
  return kEpoch;
}

}  // namespace

double NowSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       ProcessEpoch())
      .count();
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - ProcessEpoch())
          .count());
}

}  // namespace pol::obs
