#include "obs/clock.h"

#include <chrono>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace pol::obs {
namespace {

std::chrono::steady_clock::time_point ProcessEpoch() {
  static const std::chrono::steady_clock::time_point kEpoch =
      std::chrono::steady_clock::now();
  return kEpoch;
}

#if defined(__x86_64__)
// TSC-to-seconds affine map, calibrated once on first use by spinning
// ~200µs against NowSeconds. Invariant TSC (constant-rate, synchronized
// across cores) is assumed, as on every x86_64 this project targets;
// the calibration error is bounded by the clock-read latency over the
// spin span (~50ns / 200µs ≈ 0.03%).
struct TscClock {
  uint64_t base_tsc = 0;
  double base_seconds = 0.0;
  double seconds_per_tick = 0.0;
};

const TscClock& GetTscClock() {
  static const TscClock kClock = [] {
    TscClock clock;
    const uint64_t t0 = __rdtsc();
    const double s0 = NowSeconds();
    double s1 = s0;
    while (s1 - s0 < 200e-6) s1 = NowSeconds();
    const uint64_t t1 = __rdtsc();
    clock.base_tsc = t1;
    clock.base_seconds = s1;
    clock.seconds_per_tick = (s1 - s0) / static_cast<double>(t1 - t0);
    return clock;
  }();
  return kClock;
}
#endif

}  // namespace

double NowSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       ProcessEpoch())
      .count();
}

double NowSecondsFast() {
#if defined(__x86_64__)
  const TscClock& clock = GetTscClock();
  return clock.base_seconds +
         static_cast<double>(__rdtsc() - clock.base_tsc) *
             clock.seconds_per_tick;
#else
  return NowSeconds();
#endif
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - ProcessEpoch())
          .count());
}

}  // namespace pol::obs
