#ifndef POL_OBS_QUERYLOG_H_
#define POL_OBS_QUERYLOG_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/json.h"
#include "obs/metrics.h"

// The slow-query log of the serving path (DESIGN.md §3.8): one wide
// event per admitted query — id, class, operation, status, queue wait,
// scan time, deadline budget left, snapshot id, summaries visited —
// kept in two fixed-capacity rings. Notable queries (any non-OK
// status, or a scan at or over the slow threshold) are retained
// preferentially in their own ring; the healthy rest flow through a
// reservoir sample, so the log always answers both "what went wrong
// lately" and "what does normal look like" in bounded memory.
//
// Ids are process-unique and also stamped into the query's trace span
// ("serving.query.<op>#<id>"), so a trace and its query-log row join
// on id.
//
// The string fields (class, op, status) must point at static-storage
// strings (string literals, StatusCodeName results): events are POD-ish
// copies and recording must not allocate. Totals are always-on relaxed
// atomics so counter reconciliation (admitted == logged OK + logged
// errors) holds exactly even when rings wrap. Under POL_OBS=OFF
// recording is a no-op and NextId() returns 0.

namespace pol::obs {

// One wide event. Defaults describe "no value": a negative
// deadline_remaining_seconds means the query ran without a deadline.
struct QueryEvent {
  uint64_t id = 0;
  std::string_view query_class;  // "interactive" / "batch".
  std::string_view op;           // "query", "visit", "route", ...
  std::string_view status;       // StatusCodeName(), e.g. "Ok".
  bool ok = true;
  double queue_wait_seconds = 0.0;
  double scan_seconds = 0.0;
  double deadline_remaining_seconds = -1.0;
  uint64_t snapshot_id = 0;
  uint64_t summaries_visited = 0;
};

// One event as a JSON object (the JSONL export row). Non-finite
// doubles are sanitized to -1.0 — obs::Json has no NaN/Infinity, and
// the export must always parse back.
Json QueryEventToJson(const QueryEvent& event);

struct QueryLogOptions {
  size_t notable_capacity = 128;  // Slow / non-OK ring.
  size_t sampled_capacity = 128;  // Reservoir over the healthy rest.
  double slow_seconds = 0.100;    // Scan time that makes a query "slow".
};

class QueryLog {
 public:
  explicit QueryLog(QueryLogOptions options = QueryLogOptions());

  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  // The next process-unique query id (starting at 1; 0 means "no id",
  // which is what disabled builds hand out).
  uint64_t NextId();

  void Record(const QueryEvent& event);

  // Always-on accounting over every Record, independent of ring
  // retention. events == ok + errors; slow counts scans at or over the
  // threshold whatever their status.
  struct Totals {
    uint64_t events = 0;
    uint64_t ok = 0;
    uint64_t errors = 0;
    uint64_t slow = 0;
  };
  Totals totals() const;

  // Retained events, sorted by id (notable and sampled ring contents).
  std::vector<QueryEvent> NotableEvents() const;
  std::vector<QueryEvent> SampledEvents() const;

  // Every retained event as JSONL: one compact JSON object per line,
  // sorted by id across both rings.
  std::string ExportJsonl() const;

  const QueryLogOptions& options() const { return options_; }

 private:
  // splitmix64 finalizer: the reservoir draw for healthy event number
  // `seen` is Mix(seen) mapped into [0, seen] — stateless, so the hot
  // path pays no extra atomic for randomness (rand() is banned in
  // library code and obs sits below common/rng).
  static uint64_t Mix(uint64_t value);

  const QueryLogOptions options_;
  std::atomic<uint64_t> next_id_{0};
  // events == ok + errors by construction; totals() derives it.
  std::atomic<uint64_t> ok_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> slow_{0};
  std::atomic<uint64_t> sampled_seen_{0};

  mutable Mutex mutex_;
  std::vector<QueryEvent> notable_ POL_GUARDED_BY(mutex_);
  size_t notable_next_ POL_GUARDED_BY(mutex_) = 0;
  std::vector<QueryEvent> sampled_ POL_GUARDED_BY(mutex_);
};

}  // namespace pol::obs

#endif  // POL_OBS_QUERYLOG_H_
