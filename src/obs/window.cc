#include "obs/window.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace pol::obs {
namespace {

constexpr double kMinWindowSeconds = 1e-6;

double ClampWindowSeconds(double window_seconds) {
  return window_seconds > kMinWindowSeconds ? window_seconds
                                            : kMinWindowSeconds;
}

size_t ClampWindowCount(size_t window_count) {
  return window_count >= 2 ? window_count : 2;
}

}  // namespace

WindowedHistogram::WindowedHistogram(double window_seconds,
                                     size_t window_count)
    : window_seconds_(ClampWindowSeconds(window_seconds)),
      inv_window_seconds_(1.0 / window_seconds_),
      slots_(ClampWindowCount(window_count)) {}

WindowedHistogram::Slot* WindowedHistogram::AdvanceTo(uint64_t epoch) {
  Slot& slot = slots_[static_cast<size_t>(epoch % slots_.size())];
  uint64_t seen = slot.epoch.load(std::memory_order_acquire);
  while (seen != epoch) {
    // A straggler whose window has already been recycled for a newer
    // epoch drops its sample (bounded loss at the ring edge).
    if (seen != kNeverUsed && seen > epoch) return nullptr;
    if (slot.epoch.compare_exchange_weak(seen, epoch,
                                         std::memory_order_acq_rel)) {
      // This call rotated the window in; clear the previous tenant's
      // samples before reuse. Racing recorders that already saw the new
      // epoch may lose a sample to this reset — bounded, documented.
      slot.hist.Reset();
      break;
    }
  }
  return &slot;
}

void WindowedHistogram::RecordAt(double now_seconds, double value_seconds) {
  if constexpr (!kEnabled) {
    (void)now_seconds;
    (void)value_seconds;
    return;
  }
  Slot* slot = AdvanceTo(EpochOf(now_seconds));
  if (slot != nullptr) slot->hist.Record(value_seconds);
}

WindowedSnapshot WindowedHistogram::TrailingSnapshotAt(double now_seconds,
                                                       size_t windows) const {
  WindowedSnapshot out;
  if (windows == 0 || windows > slots_.size()) windows = slots_.size();
  out.span_seconds = static_cast<double>(windows) * window_seconds_;
  if constexpr (!kEnabled) return out;
  const uint64_t current = EpochOf(now_seconds);
  const uint64_t span = static_cast<uint64_t>(windows);
  const uint64_t oldest = current >= span - 1 ? current - (span - 1) : 0;
  for (const Slot& slot : slots_) {
    const uint64_t epoch = slot.epoch.load(std::memory_order_acquire);
    if (epoch == kNeverUsed || epoch > current || epoch < oldest) continue;
    const uint64_t slot_count = slot.hist.count();
    if (slot_count == 0) continue;
    if (out.count == 0 || slot.hist.min_seconds() < out.min_seconds) {
      out.min_seconds = slot.hist.min_seconds();
    }
    out.max_seconds = std::max(out.max_seconds, slot.hist.max_seconds());
    out.count += slot_count;
    out.overflow_count += slot.hist.overflow_count();
    out.sum_seconds += slot.hist.sum_seconds();
    for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
      out.buckets[i] += slot.hist.bucket(i);
    }
  }
  return out;
}

WindowedSnapshot WindowedHistogram::TrailingSnapshot(size_t windows) const {
  return TrailingSnapshotAt(NowSeconds(), windows);
}

namespace {

// The estimate for rank fraction `frac` inside bucket `index` of a
// merged snapshot: linear inside the sub-microsecond bucket, log-linear
// (lower * 2^frac) inside the power-of-two buckets, log-linear toward
// the observed max inside the open-ended top bucket.
double InterpolateInBucket(const WindowedSnapshot& snapshot, size_t index,
                           double frac) {
  const double lower = Histogram::BucketLowerBoundSeconds(index);
  if (index == 0) return frac * 1e-6;
  double upper;
  if (index + 1 < Histogram::kBucketCount) {
    upper = Histogram::BucketLowerBoundSeconds(index + 1);
  } else {
    upper = std::max(snapshot.max_seconds, lower * 2.0);
  }
  return lower * std::pow(upper / lower, frac);
}

}  // namespace

double WindowedHistogram::QuantileFromSnapshot(const WindowedSnapshot& snapshot,
                                               double p) {
  if (snapshot.count == 0) return 0.0;
  double clamped = p;
  if (!(clamped >= 0.0)) clamped = 0.0;  // NaN lands here too.
  if (clamped > 1.0) clamped = 1.0;
  const double rank = clamped * static_cast<double>(snapshot.count);
  uint64_t cumulative = 0;
  double estimate = snapshot.max_seconds;
  for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
    const uint64_t in_bucket = snapshot.buckets[i];
    if (in_bucket == 0) continue;
    if (rank <= static_cast<double>(cumulative + in_bucket)) {
      const double frac = (rank - static_cast<double>(cumulative)) /
                          static_cast<double>(in_bucket);
      estimate = InterpolateInBucket(snapshot, i, frac);
      break;
    }
    cumulative += in_bucket;
  }
  // Interpolation never needs to leave the observed value range.
  estimate = std::max(estimate, snapshot.min_seconds);
  if (snapshot.max_seconds > 0.0) {
    estimate = std::min(estimate, snapshot.max_seconds);
  }
  return estimate;
}

double WindowedHistogram::QuantileEstimateAt(double now_seconds, double p,
                                             size_t windows) const {
  return QuantileFromSnapshot(TrailingSnapshotAt(now_seconds, windows), p);
}

double WindowedHistogram::QuantileEstimate(double p, size_t windows) const {
  return QuantileEstimateAt(NowSeconds(), p, windows);
}

WindowedRate::WindowedRate(double window_seconds, size_t window_count)
    : window_seconds_(ClampWindowSeconds(window_seconds)),
      inv_window_seconds_(1.0 / window_seconds_),
      slots_(ClampWindowCount(window_count)) {}

void WindowedRate::IncrementAt(double now_seconds, uint64_t delta) {
  if constexpr (!kEnabled) {
    (void)now_seconds;
    (void)delta;
    return;
  }
  const uint64_t epoch = EpochOf(now_seconds);
  Slot& slot = slots_[static_cast<size_t>(epoch % slots_.size())];
  uint64_t seen = slot.epoch.load(std::memory_order_acquire);
  while (seen != epoch) {
    if (seen != kNeverUsed && seen > epoch) return;  // Stale straggler.
    if (slot.epoch.compare_exchange_weak(seen, epoch,
                                         std::memory_order_acq_rel)) {
      slot.count.store(0, std::memory_order_relaxed);
      break;
    }
  }
  slot.count.fetch_add(delta, std::memory_order_relaxed);
}

uint64_t WindowedRate::TotalAt(double now_seconds, size_t windows) const {
  if constexpr (!kEnabled) {
    (void)now_seconds;
    (void)windows;
    return 0;
  }
  if (windows == 0 || windows > slots_.size()) windows = slots_.size();
  const uint64_t current = EpochOf(now_seconds);
  const uint64_t span = static_cast<uint64_t>(windows);
  const uint64_t oldest = current >= span - 1 ? current - (span - 1) : 0;
  uint64_t total = 0;
  for (const Slot& slot : slots_) {
    const uint64_t epoch = slot.epoch.load(std::memory_order_acquire);
    if (epoch == kNeverUsed || epoch > current || epoch < oldest) continue;
    total += slot.count.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t WindowedRate::Total(size_t windows) const {
  return TotalAt(NowSeconds(), windows);
}

double WindowedRate::RatePerSecondAt(double now_seconds,
                                     size_t windows) const {
  if (windows == 0 || windows > slots_.size()) windows = slots_.size();
  const double span = static_cast<double>(windows) * window_seconds_;
  return static_cast<double>(TotalAt(now_seconds, windows)) / span;
}

double WindowedRate::RatePerSecond(size_t windows) const {
  return RatePerSecondAt(NowSeconds(), windows);
}

}  // namespace pol::obs
