#ifndef POL_OBS_TRACE_H_
#define POL_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/clock.h"
#include "obs/metrics.h"  // kEnabled

// Scoped trace spans with Chrome trace-event export. Instrumented
// scopes declare
//
//   POL_TRACE_SPAN("stage.trips");
//
// and, while the global TraceRecorder is started, the span's
// begin/duration lands in a per-thread buffer as one complete ("ph":
// "X") event. ExportChromeTraceJson renders everything recorded so far
// as a document chrome://tracing and Perfetto load directly.
//
// Overhead: with the recorder stopped a span is one relaxed atomic
// load; recording appends to a thread-owned buffer under a per-buffer
// mutex that only the exporter ever contends. Span names are copied at
// record time (spans are coarse — stages, chunks, checkpoints — not
// per-record). Under POL_OBS=OFF the macro compiles away entirely.

namespace pol::obs {

// One completed span.
struct TraceEvent {
  std::string name;
  uint64_t ts_micros = 0;   // Begin, on the obs clock (process epoch).
  uint64_t dur_micros = 0;  // Duration.
  uint32_t tid = 0;         // Recorder-assigned thread id, dense from 1.
};

class TraceRecorder {
 public:
  // The process-wide recorder POL_TRACE_SPAN records into.
  static TraceRecorder& Global();

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Collection gate. Spans that begin while stopped record nothing,
  // even if the recorder starts before they end.
  void Start() { enabled_.store(kEnabled, std::memory_order_relaxed); }
  void Stop() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Appends one complete event to the calling thread's buffer.
  void Record(std::string name, uint64_t ts_micros, uint64_t dur_micros);

  // Drops every recorded event (buffers and thread ids survive).
  void Clear();

  // All events recorded so far, merged across threads in ascending
  // begin-timestamp order.
  std::vector<TraceEvent> Events() const;
  size_t event_count() const;

  // Chrome trace-event JSON: {"traceEvents": [{"name", "cat", "ph":
  // "X", "ts", "dur", "pid", "tid"}, ...], "displayTimeUnit": "ms"}.
  // Valid (and empty) when nothing was recorded.
  std::string ExportChromeTraceJson() const;

 private:
  struct ThreadBuffer {
    Mutex mutex;
    std::vector<TraceEvent> events POL_GUARDED_BY(mutex);
    uint32_t tid = 0;  // Written once at creation (under the recorder
                       // mutex), read lock-free by the owning thread.
  };

  ThreadBuffer* BufferForThisThread();

  std::atomic<bool> enabled_{false};
  mutable Mutex mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_ POL_GUARDED_BY(mutex_);
  uint32_t next_tid_ POL_GUARDED_BY(mutex_) = 1;
};

// RAII span: captures the start on construction and records into the
// global recorder on destruction — iff the recorder was started when
// the span began.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name) {
    if constexpr (kEnabled) {
      if (TraceRecorder::Global().enabled()) {
        name_.assign(name.data(), name.size());
        start_micros_ = NowMicros();
        active_ = true;
      }
    } else {
      (void)name;
    }
  }

  ~ScopedSpan() {
    if constexpr (kEnabled) {
      if (active_) {
        const uint64_t end = NowMicros();
        TraceRecorder::Global().Record(
            std::move(name_), start_micros_,
            end > start_micros_ ? end - start_micros_ : 0);
      }
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  std::string name_;
  uint64_t start_micros_ = 0;
  bool active_ = false;
};

}  // namespace pol::obs

#define POL_TRACE_CONCAT_INNER_(a, b) a##b
#define POL_TRACE_CONCAT_(a, b) POL_TRACE_CONCAT_INNER_(a, b)

// Traces the enclosing scope as one complete span named `name` (any
// std::string_view-convertible expression; evaluated once).
#define POL_TRACE_SPAN(name) \
  ::pol::obs::ScopedSpan POL_TRACE_CONCAT_(pol_trace_span_, __LINE__)(name)

#endif  // POL_OBS_TRACE_H_
