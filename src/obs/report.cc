#include "obs/report.h"

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <string_view>
#include <system_error>

namespace pol::obs {
namespace {

void SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

}  // namespace

bool WriteTextFileAtomic(const std::string& path, std::string_view text,
                         std::string* error) {
  const std::filesystem::path target(path);
  std::error_code ec;
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path(), ec);
    // A failed create_directories only matters if the open below fails.
  }
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream file(tmp_path, std::ios::binary | std::ios::trunc);
    if (!file) {
      SetError(error, "cannot open for writing: " + tmp_path);
      return false;
    }
    file.write(text.data(), static_cast<std::streamsize>(text.size()));
    file.flush();
    if (!file) {
      SetError(error, "short write: " + tmp_path);
      return false;
    }
  }
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    std::filesystem::remove(tmp_path, ec);
    SetError(error, "cannot publish file: " + path);
    return false;
  }
  return true;
}

bool WriteJsonFile(const std::string& path, const Json& value,
                   std::string* error) {
  return WriteTextFileAtomic(path, value.Dump(2) + "\n", error);
}

bool ReadTextFile(const std::string& path, std::string* out,
                  std::string* error) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    SetError(error, "cannot open for reading: " + path);
    return false;
  }
  out->assign((std::istreambuf_iterator<char>(file)),
              std::istreambuf_iterator<char>());
  if (file.bad()) {
    SetError(error, "read error: " + path);
    return false;
  }
  return true;
}

}  // namespace pol::obs
