#ifndef POL_OBS_REPORT_H_
#define POL_OBS_REPORT_H_

#include <string>
#include <string_view>

#include "obs/json.h"

// File emission for observability artifacts: run reports, trace
// exports and bench summaries all land on disk through these. Writes
// are atomic (tmp file + rename) so a crash mid-write never leaves a
// half-document where a consumer polls for reports. Error reporting is
// bool + message rather than pol::Status because obs sits below common
// in the layering; core/run_report wraps these into Status.

namespace pol::obs {

// Writes `text` to `path` atomically. Returns false and describes the
// failure in *error (when non-null) on any I/O problem.
bool WriteTextFileAtomic(const std::string& path, std::string_view text,
                         std::string* error);

// Pretty-prints `value` (2-space indent, trailing newline) to `path`
// atomically.
bool WriteJsonFile(const std::string& path, const Json& value,
                   std::string* error);

// Reads a whole file into *out. Returns false (with *error) when
// unreadable.
bool ReadTextFile(const std::string& path, std::string* out,
                  std::string* error);

}  // namespace pol::obs

#endif  // POL_OBS_REPORT_H_
