#ifndef POL_OBS_OPENMETRICS_H_
#define POL_OBS_OPENMETRICS_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

// OpenMetrics text exposition for a MetricsSnapshot: the serving
// telemetry exporter (core/serving_guard.h) renders the whole Registry
// — windowed quantile/QPS/SLO gauges included, since those are
// published as plain gauges — into an atomically-replaced text file
// any Prometheus-style scraper (or `polinv watch`) can read.
//
// Mapping: dotted names are sanitized ('.' and any other illegal
// character become '_'), counters render as `<name>_total`, gauges
// as-is, histograms as the cumulative `<name>_bucket{le="..."}` series
// (upper bounds in seconds, closing with le="+Inf") plus `<name>_sum`
// and `<name>_count`. The document ends with the mandatory `# EOF`.
//
// ParseOpenMetrics is the reading half used by `polinv watch` and the
// round-trip tests: a tolerant line parser for the subset this
// renderer emits, not a full exposition-format validator.

namespace pol::obs {

// "serving.query.p99_us" -> "serving_query_p99_us". Illegal leading
// digits are prefixed with '_'.
std::string OpenMetricsName(std::string_view name);

std::string RenderOpenMetrics(const MetricsSnapshot& snapshot);

// RenderOpenMetrics + atomic file replace (obs/report.h semantics).
bool WriteOpenMetricsFile(const std::string& path,
                          const MetricsSnapshot& snapshot,
                          std::string* error);

// One parsed sample line: `name{label="value",...} 42`.
struct OpenMetricsSample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;
};

// Every sample line of `text` in order; comment (#) and blank lines are
// skipped, malformed lines dropped.
std::vector<OpenMetricsSample> ParseOpenMetrics(std::string_view text);

// First sample with this (already-sanitized) name; nullptr when absent.
const OpenMetricsSample* FindSample(
    const std::vector<OpenMetricsSample>& samples, std::string_view name);

}  // namespace pol::obs

#endif  // POL_OBS_OPENMETRICS_H_
