#include "hexgrid/hexgrid.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/logging.h"
#include "geo/geodesic.h"
#include "hexgrid/icosahedron.h"

namespace pol::hex {
namespace {

// Cell ownership (this construction makes LatLngToCell an exact,
// deterministic partition of the sphere with an exact round-trip):
//
//  * A lattice cell (f, i, j) is CANONICAL iff the nearest face to its
//    own centre is f. Canonical cells of all faces together form a
//    single locally-uniform set of centres over the whole sphere (every
//    location has exactly one face's lattice "active"), which is what
//    keeps the global cell count at the calibrated NumCells(res).
//  * A point maps to the nearest canonical centre, searched over the
//    rounded cell and its six lattice neighbours on every face whose
//    centre is within (nearest-face angle + 6 hex radii) of the point.
//    Ties go to the first candidate in a fixed enumeration order.
//
// Round-trip: for a canonical cell c with centre x, FindFace(x) is c's
// face (canonicality), x rounds to itself there at distance zero, and no
// other candidate can beat distance zero — so LatLngToCell(x) == c.
//
// Existence: if the rounded cell on the point's own face is not
// canonical (its centre fell just across a seam), one of its six
// neighbours has a centre at least 0.7 hex radii back toward the face
// interior, which is canonical; so a candidate always exists.
constexpr double kCandidateSlackHexRadii = 6.0;

struct Candidate {
  int face;
  Axial axial;
  geo::Vec3 center;  // Sphere position of the candidate hex centre.
};

// Rounds `p` in the lattice of `face`; returns false when the point has
// no valid gnomonic image on that face (never happens for candidate
// faces, which are < ~40 degrees away).
bool RoundOnFace(const geo::Vec3& p, int face, const LatticeParams& params,
                 Candidate* out) {
  const Icosahedron& ico = Icosahedron::Get();
  const geo::Gnomonic& proj = ico.FaceProjection(face);
  bool ok = false;
  const geo::PlanePoint pp = proj.Forward(p, &ok);
  if (!ok) return false;
  const Axial axial = params.PlaneToAxial(pp);
  const geo::PlanePoint center_pp = params.AxialToPlane(
      static_cast<double>(axial.i), static_cast<double>(axial.j));
  out->face = face;
  out->axial = axial;
  out->center = proj.Inverse(center_pp);
  return true;
}

}  // namespace

CellIndex LatLngToCell(const geo::LatLng& point, int res) {
  if (!point.IsValid() || res < 0 || res > kMaxResolution) {
    return kInvalidCell;
  }
  const Icosahedron& ico = Icosahedron::Get();
  const LatticeParams& params = LatticeParams::Get(res);
  const geo::Vec3 p = geo::LatLngToVec3(point);

  // Nearest and second-nearest face by centre angle.
  double dots[kNumFaces];
  int face0 = 0;
  double best_dot = -2.0;
  double second_dot = -2.0;
  for (int f = 0; f < kNumFaces; ++f) {
    dots[f] = p.Dot(ico.FaceCenter(f));
    if (dots[f] > best_dot) {
      second_dot = best_dot;
      best_dot = dots[f];
      face0 = f;
    } else if (dots[f] > second_dot) {
      second_dot = dots[f];
    }
  }
  const double best_angle = std::acos(std::clamp(best_dot, -1.0, 1.0));
  const double candidate_angle =
      best_angle + kCandidateSlackHexRadii * params.hex_size();
  const double candidate_min_dot =
      std::cos(std::min(candidate_angle, geo::kPi));

  // Fast path (face interior): only one candidate face, and the rounded
  // cell on it is canonical.
  Candidate c0;
  if (second_dot < candidate_min_dot && RoundOnFace(p, face0, params, &c0) &&
      ico.FindFace(c0.center) == face0) {
    return PackCell(res, face0, c0.axial.i, c0.axial.j);
  }

  // Vertex cells. Within ~2 hex radii of the 12 icosahedron vertices the
  // five incident faces' lattices form an exact 5-fold symmetric orbit
  // in which every near-vertex cell centre lands in a *different* face's
  // territory — no cell is canonical there (the analogue of H3's
  // pentagon corner case). The vertex-owner face (lowest incident id)
  // therefore contributes additional VALID cells: its lattice cells
  // whose centre is within kVertexCellHexRadii of the vertex.
  constexpr double kVertexCellHexRadii = 3.0;
  const int vertex = ico.NearestVertex(p);
  const double vertex_radius = kVertexCellHexRadii * params.hex_size();
  const bool near_vertex =
      geo::AngleBetween(p, ico.Vertex(vertex)) <=
      vertex_radius + 2.0 * params.hex_size();
  const int vertex_face = ico.VertexOwnerFace(vertex);
  const double vertex_min_dot = std::cos(vertex_radius);

  // Full path (seams, vertices): nearest valid centre over the rounded
  // cell and its lattice neighbours on every candidate face.
  bool have_best = false;
  Candidate best{};
  double best_center_dot = -2.0;
  for (int f = 0; f < kNumFaces; ++f) {
    if (dots[f] < candidate_min_dot) continue;
    Candidate rounded;
    if (!RoundOnFace(p, f, params, &rounded)) continue;
    const geo::Gnomonic& proj = ico.FaceProjection(f);
    for (int k = -1; k < 6; ++k) {
      Axial cell = rounded.axial;
      geo::Vec3 center = rounded.center;
      if (k >= 0) {
        const Axial& offset = NeighborOffsets()[static_cast<size_t>(k)];
        cell = Axial{rounded.axial.i + offset.i, rounded.axial.j + offset.j};
        center = proj.Inverse(params.AxialToPlane(static_cast<double>(cell.i),
                                                  static_cast<double>(cell.j)));
      }
      bool valid = ico.FindFace(center) == f;  // Canonical cell.
      if (!valid && near_vertex && f == vertex_face) {
        valid = center.Dot(ico.Vertex(vertex)) >= vertex_min_dot;
      }
      if (!valid) continue;
      const double center_dot = p.Dot(center);
      if (!have_best || center_dot > best_center_dot + 1e-15) {
        have_best = true;
        best = Candidate{f, cell, center};
        best_center_dot = center_dot;
      }
    }
  }
  if (!have_best) return kInvalidCell;
  return PackCell(res, best.face, best.axial.i, best.axial.j);
}

geo::LatLng CellToLatLng(CellIndex cell) {
  CellParts parts;
  if (!UnpackCell(cell, &parts)) return {};
  const Icosahedron& ico = Icosahedron::Get();
  const LatticeParams& params = LatticeParams::Get(parts.res);
  const geo::PlanePoint pp = params.AxialToPlane(static_cast<double>(parts.i),
                                                 static_cast<double>(parts.j));
  return geo::Vec3ToLatLng(ico.FaceProjection(parts.face).Inverse(pp));
}

std::vector<geo::LatLng> CellToBoundary(CellIndex cell) {
  CellParts parts;
  if (!UnpackCell(cell, &parts)) return {};
  const Icosahedron& ico = Icosahedron::Get();
  const LatticeParams& params = LatticeParams::Get(parts.res);
  const auto corners = params.CellCorners({parts.i, parts.j});
  std::vector<geo::LatLng> boundary;
  boundary.reserve(6);
  for (const auto& corner : corners) {
    boundary.push_back(geo::Vec3ToLatLng(
        ico.FaceProjection(parts.face).Inverse(corner)));
  }
  return boundary;
}

namespace {

// Raw neighbour enumeration: the six lattice-step centres re-indexed
// through LatLngToCell (which canonicalizes across seams). Not
// necessarily symmetric near icosahedron seams.
std::vector<CellIndex> RawNeighbors(CellIndex cell, const CellParts& parts) {
  const Icosahedron& ico = Icosahedron::Get();
  const LatticeParams& params = LatticeParams::Get(parts.res);
  const geo::Gnomonic& proj = ico.FaceProjection(parts.face);

  std::vector<CellIndex> out;
  out.reserve(6);
  for (const Axial& offset : NeighborOffsets()) {
    const geo::PlanePoint pp =
        params.AxialToPlane(static_cast<double>(parts.i + offset.i),
                            static_cast<double>(parts.j + offset.j));
    const CellIndex neighbor =
        LatLngToCell(geo::Vec3ToLatLng(proj.Inverse(pp)), parts.res);
    if (neighbor == kInvalidCell || neighbor == cell) continue;
    if (std::find(out.begin(), out.end(), neighbor) == out.end()) {
      out.push_back(neighbor);
    }
  }
  return out;
}

}  // namespace

std::vector<CellIndex> Neighbors(CellIndex cell) {
  CellParts parts;
  if (!UnpackCell(cell, &parts)) return {};
  std::vector<CellIndex> raw = RawNeighbors(cell, parts);
  // Keep only mutual adjacencies so that the neighbour relation is
  // symmetric everywhere (lattice steps can be one-sided across seams).
  std::vector<CellIndex> out;
  out.reserve(raw.size());
  for (const CellIndex n : raw) {
    CellParts n_parts;
    if (!UnpackCell(n, &n_parts)) continue;
    if (n_parts.face == parts.face) {
      out.push_back(n);  // Same-face lattice steps are always mutual.
      continue;
    }
    const std::vector<CellIndex> back = RawNeighbors(n, n_parts);
    if (std::find(back.begin(), back.end(), cell) != back.end()) {
      out.push_back(n);
    }
  }
  return out;
}

std::vector<CellIndex> GridDisk(CellIndex cell, int k) {
  if (!IsValidCell(cell) || k < 0) return {};
  std::unordered_set<CellIndex> seen = {cell};
  std::vector<CellIndex> frontier = {cell};
  std::vector<CellIndex> result = {cell};
  for (int step = 0; step < k; ++step) {
    std::vector<CellIndex> next;
    for (const CellIndex c : frontier) {
      for (const CellIndex n : Neighbors(c)) {
        if (seen.insert(n).second) {
          next.push_back(n);
          result.push_back(n);
        }
      }
    }
    frontier = std::move(next);
  }
  return result;
}

std::vector<CellIndex> GridRing(CellIndex cell, int k) {
  if (!IsValidCell(cell) || k < 0) return {};
  if (k == 0) return {cell};
  std::unordered_set<CellIndex> seen = {cell};
  std::vector<CellIndex> frontier = {cell};
  for (int step = 0; step < k; ++step) {
    std::vector<CellIndex> next;
    for (const CellIndex c : frontier) {
      for (const CellIndex n : Neighbors(c)) {
        if (seen.insert(n).second) next.push_back(n);
      }
    }
    frontier = std::move(next);
  }
  return frontier;
}

CellIndex CellToParent(CellIndex cell, int parent_res) {
  CellParts parts;
  if (!UnpackCell(cell, &parts)) return kInvalidCell;
  if (parent_res < 0 || parent_res > parts.res) return kInvalidCell;
  if (parent_res == parts.res) return cell;
  return LatLngToCell(CellToLatLng(cell), parent_res);
}

std::vector<CellIndex> CellToChildren(CellIndex cell, int child_res) {
  CellParts parts;
  if (!UnpackCell(cell, &parts)) return {};
  if (child_res < parts.res || child_res > kMaxResolution) return {};
  if (child_res == parts.res) return {cell};

  // Candidate children: a lattice disk around the child cell at the
  // parent's centre, wide enough to cover the parent hexagon.
  const int diff = child_res - parts.res;
  const int radius =
      static_cast<int>(std::ceil(std::pow(std::sqrt(7.0), diff))) + 2;
  const CellIndex center_child = LatLngToCell(CellToLatLng(cell), child_res);
  std::vector<CellIndex> children;
  for (const CellIndex candidate : GridDisk(center_child, radius)) {
    if (CellToParent(candidate, parts.res) == cell) {
      children.push_back(candidate);
    }
  }
  std::sort(children.begin(), children.end());
  return children;
}

std::vector<CellIndex> CellsWithinDistanceKm(const geo::LatLng& center,
                                             double radius_km, int res) {
  const CellIndex start = LatLngToCell(center, res);
  if (start == kInvalidCell || radius_km < 0.0) return {};
  // Dense point sampling rather than neighbour flood fill: sampling is
  // immune to any adjacency raggedness along icosahedron seams. The
  // spacing guarantees a sample in every cell: a hexagon with edge e
  // contains a disk of radius (sqrt(3)/2)e, shrunk at worst ~0.63x by
  // gnomonic distortion, so a square grid at 0.55e always hits it.
  const double step_km = 0.55 * EdgeLengthKm(res);
  std::unordered_set<CellIndex> seen = {start};
  std::vector<CellIndex> result = {start};
  for (double y = -radius_km; y <= radius_km; y += step_km) {
    const geo::LatLng row = geo::DestinationPoint(center, 0.0, y);
    for (double x = -radius_km; x <= radius_km; x += step_km) {
      if (x * x + y * y > radius_km * radius_km) continue;
      const geo::LatLng p = geo::DestinationPoint(row, 90.0, x);
      const CellIndex cell = LatLngToCell(p, res);
      if (cell != kInvalidCell && seen.insert(cell).second) {
        result.push_back(cell);
      }
    }
  }
  return result;
}

double CellDistanceKm(CellIndex a, CellIndex b) {
  return geo::HaversineKm(CellToLatLng(a), CellToLatLng(b));
}

}  // namespace pol::hex
