#ifndef POL_HEXGRID_HEXGRID_H_
#define POL_HEXGRID_HEXGRID_H_

#include <string>
#include <vector>

#include "geo/latlng.h"
#include "hexgrid/cell_index.h"
#include "hexgrid/hex_math.h"

// Public API of the hexagonal discrete global grid system (DGGS).
//
// This is the from-scratch H3 equivalent used by the Patterns-of-Life
// inventory (the paper uses Uber's H3; its methodology only requires a
// global, locally-uniform, hierarchical hexagonal grid — see §3.2.1).
//
// Construction: an icosahedron splits the sphere into 20 faces; each face
// carries an aperture-7 hexagonal lattice in its gnomonic tangent plane
// (hex_math.h). A point's cell is the lattice centre nearest to it,
// considering the lattices of all faces whose centre is nearly as close
// as the nearest face ("seam candidates"). This makes the assignment a
// deterministic partition of the sphere and gives the exact round-trip
// property LatLngToCell(CellToLatLng(c), res(c)) == c.
//
// Properties mirroring H3:
//   * resolutions 0..15; mean cell area = EarthArea / (2 + 120 * 7^res)
//     (res 6 ~= 36 km^2, res 7 ~= 5.2 km^2, matching H3's published
//     averages);
//   * every cell has six neighbours except along icosahedron seams;
//   * parent/child containment is approximate, exactly as in H3;
//   * the 12 icosahedron vertices get special "vertex cells" owned by
//     the lowest-id incident face (the analogue of H3's 12 pentagons).
//
// The exact round-trip and neighbour-symmetry invariants hold for
// resolutions >= 3. At resolutions 0-2 a hexagon is comparable in size
// to an icosahedron face; assignment is still a deterministic total
// partition, but near-seam cells are ragged and the round trip may land
// in an adjacent cell. The paper's working resolutions are 5-8.

namespace pol::hex {

// Cell containing `point` at `res`. Returns kInvalidCell for invalid
// coordinates or resolution.
CellIndex LatLngToCell(const geo::LatLng& point, int res);

// Centre of a cell. Returns (0,0) for invalid input.
geo::LatLng CellToLatLng(CellIndex cell);

// The six corners of the cell's hexagon, counter-clockwise.
std::vector<geo::LatLng> CellToBoundary(CellIndex cell);

// Distinct neighbouring cells (six in face interiors; possibly fewer
// across icosahedron seams, where two planar neighbours can canonicalize
// to the same cell).
std::vector<CellIndex> Neighbors(CellIndex cell);

// All cells within `k` neighbour steps of `cell`, including `cell`
// itself (breadth-first over the neighbour graph, so it is seam-safe).
std::vector<CellIndex> GridDisk(CellIndex cell, int k);

// Cells at exactly `k` steps.
std::vector<CellIndex> GridRing(CellIndex cell, int k);

// Coarser cell containing this cell's centre. parent_res must not exceed
// the cell's resolution. Returns kInvalidCell on bad input.
CellIndex CellToParent(CellIndex cell, int parent_res);

// Finer cells whose parent (per CellToParent) is `cell`. child_res must
// be >= the cell's resolution; the expected count is ~7^(diff).
std::vector<CellIndex> CellToChildren(CellIndex cell, int child_res);

// Every cell containing some point within `radius_km` of `center` at
// `res` — a disk polyfill used for geofencing (computed by dense point
// sampling, so it is seam-safe). Always contains the centre cell.
std::vector<CellIndex> CellsWithinDistanceKm(const geo::LatLng& center,
                                             double radius_km, int res);

// Great-circle distance between two cell centres, km.
double CellDistanceKm(CellIndex a, CellIndex b);

}  // namespace pol::hex

#endif  // POL_HEXGRID_HEXGRID_H_
