#include "hexgrid/region.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "geo/geodesic.h"
#include "hexgrid/hex_math.h"
#include "hexgrid/hexgrid.h"

namespace pol::hex {
namespace {

// Sampling step that guarantees hitting every cell: a hexagon with edge
// e contains a disk of radius (sqrt(3)/2)e, shrunk at worst ~0.63x by
// gnomonic distortion (see CellsWithinDistanceKm).
double SampleStepKm(int res) { return 0.55 * EdgeLengthKm(res); }

}  // namespace

std::vector<CellIndex> BoxToCells(double lat_min, double lat_max,
                                  double lng_min, double lng_max, int res) {
  std::vector<CellIndex> out;
  if (!(lat_max > lat_min) || !(lng_max > lng_min)) return out;
  const double step_km = SampleStepKm(res);
  const double dlat = step_km / 111.2;
  std::unordered_set<CellIndex> seen;
  for (double lat = lat_min; lat <= lat_max + dlat; lat += dlat) {
    const double clamped_lat = std::min(lat, lat_max);
    // Longitude step shrinks with latitude.
    const double cos_lat =
        std::max(0.05, std::cos(geo::DegToRad(clamped_lat)));
    const double dlng = dlat / cos_lat;
    for (double lng = lng_min; lng <= lng_max + dlng; lng += dlng) {
      const geo::LatLng p{clamped_lat, std::min(lng, lng_max)};
      const CellIndex cell = LatLngToCell(p, res);
      if (cell != kInvalidCell && seen.insert(cell).second) {
        out.push_back(cell);
      }
    }
  }
  return out;
}

bool PointInPolygon(const std::vector<geo::LatLng>& ring,
                    const geo::LatLng& p) {
  // Even-odd ray casting in plate-carree coordinates.
  bool inside = false;
  const size_t n = ring.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const double yi = ring[i].lat_deg;
    const double yj = ring[j].lat_deg;
    const double xi = ring[i].lng_deg;
    const double xj = ring[j].lng_deg;
    const bool crosses = (yi > p.lat_deg) != (yj > p.lat_deg);
    if (crosses) {
      const double x_at =
          xi + (p.lat_deg - yi) / (yj - yi) * (xj - xi);
      if (p.lng_deg < x_at) inside = !inside;
    }
  }
  return inside;
}

std::vector<CellIndex> PolygonToCells(const std::vector<geo::LatLng>& ring,
                                      int res) {
  std::vector<CellIndex> out;
  if (ring.size() < 3) return out;
  double lat_min = 90, lat_max = -90, lng_min = 180, lng_max = -180;
  for (const geo::LatLng& v : ring) {
    lat_min = std::min(lat_min, v.lat_deg);
    lat_max = std::max(lat_max, v.lat_deg);
    lng_min = std::min(lng_min, v.lng_deg);
    lng_max = std::max(lng_max, v.lng_deg);
  }
  for (const CellIndex cell : BoxToCells(lat_min, lat_max, lng_min, lng_max,
                                         res)) {
    if (PointInPolygon(ring, CellToLatLng(cell))) out.push_back(cell);
  }
  return out;
}

std::vector<CellIndex> CompactCells(const std::vector<CellIndex>& cells) {
  std::unordered_set<CellIndex> current(cells.begin(), cells.end());
  if (current.empty()) return {};
  const int res = CellResolution(*current.begin());
  for (int level = res; level > 0; --level) {
    // Group by parent; replace complete sibling sets.
    std::unordered_map<CellIndex, std::vector<CellIndex>> by_parent;
    for (const CellIndex cell : current) {
      if (CellResolution(cell) != level) continue;
      by_parent[CellToParent(cell, level - 1)].push_back(cell);
    }
    bool changed = false;
    for (const auto& [parent, members] : by_parent) {
      const std::vector<CellIndex> expected =
          CellToChildren(parent, level);
      if (expected.empty() || members.size() != expected.size()) continue;
      std::vector<CellIndex> sorted = members;
      std::sort(sorted.begin(), sorted.end());
      if (sorted != expected) continue;  // expected is already sorted.
      for (const CellIndex member : members) current.erase(member);
      current.insert(parent);
      changed = true;
    }
    if (!changed) break;  // Higher levels cannot complete either.
  }
  std::vector<CellIndex> out(current.begin(), current.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<CellIndex> UncompactCells(const std::vector<CellIndex>& cells,
                                      int res) {
  std::unordered_set<CellIndex> seen;
  std::vector<CellIndex> out;
  for (const CellIndex cell : cells) {
    const int cell_res = CellResolution(cell);
    if (cell_res < 0 || cell_res > res) continue;
    if (cell_res == res) {
      if (seen.insert(cell).second) out.push_back(cell);
      continue;
    }
    for (const CellIndex child : CellToChildren(cell, res)) {
      if (seen.insert(child).second) out.push_back(child);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<CellIndex> GridPathCells(const geo::LatLng& a,
                                     const geo::LatLng& b, int res) {
  std::vector<CellIndex> out;
  const double step_km = SampleStepKm(res);
  const std::vector<geo::LatLng> samples =
      geo::SampleGreatCircle(a, b, step_km);
  for (const geo::LatLng& p : samples) {
    const CellIndex cell = LatLngToCell(p, res);
    if (cell == kInvalidCell) continue;
    if (out.empty() || out.back() != cell) {
      // Deduplicate only consecutive repeats: a path may legitimately
      // revisit no cell on a great circle, so this keeps order exact.
      out.push_back(cell);
    }
  }
  return out;
}

}  // namespace pol::hex
