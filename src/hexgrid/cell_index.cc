#include "hexgrid/cell_index.h"

#include <cstdio>
#include <string>

#include "hexgrid/icosahedron.h"

namespace pol::hex {
namespace {

constexpr int64_t kBias = int64_t{1} << 26;
constexpr uint64_t kCoordMask = (uint64_t{1} << 27) - 1;

}  // namespace

CellIndex PackCell(int res, int face, int64_t i, int64_t j) {
  if (res < 0 || res > kMaxResolution || face < 0 || face >= kNumFaces ||
      i < -kMaxAxialCoord || i > kMaxAxialCoord || j < -kMaxAxialCoord ||
      j > kMaxAxialCoord) {
    return kInvalidCell;
  }
  const uint64_t bj = static_cast<uint64_t>(j + kBias);
  const uint64_t bi = static_cast<uint64_t>(i + kBias);
  return bj | (bi << 27) | (static_cast<uint64_t>(face) << 54) |
         (static_cast<uint64_t>(res) << 59);
}

bool UnpackCell(CellIndex cell, CellParts* parts) {
  if ((cell >> 63) != 0) return false;
  const int res = static_cast<int>((cell >> 59) & 0xf);
  const int face = static_cast<int>((cell >> 54) & 0x1f);
  if (face >= kNumFaces) return false;
  parts->res = res;
  parts->face = face;
  parts->i = static_cast<int64_t>((cell >> 27) & kCoordMask) - kBias;
  parts->j = static_cast<int64_t>(cell & kCoordMask) - kBias;
  return true;
}

bool IsValidCell(CellIndex cell) {
  CellParts parts;
  return UnpackCell(cell, &parts);
}

int CellResolution(CellIndex cell) {
  CellParts parts;
  if (!UnpackCell(cell, &parts)) return -1;
  return parts.res;
}

std::string CellToString(CellIndex cell) {
  CellParts parts;
  if (!UnpackCell(cell, &parts)) return "invalid-cell";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "r%d:f%d:(%lld,%lld)", parts.res, parts.face,
                static_cast<long long>(parts.i),
                static_cast<long long>(parts.j));
  return buf;
}

}  // namespace pol::hex
