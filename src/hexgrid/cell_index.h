#ifndef POL_HEXGRID_CELL_INDEX_H_
#define POL_HEXGRID_CELL_INDEX_H_

#include <cstdint>
#include <string>

#include "hexgrid/hex_math.h"

// 64-bit packed cell identifiers.
//
// A cell is identified by (resolution, owning face, axial i, axial j).
// Layout, low to high bit:
//
//   bits  0..26  biased axial j   (j + 2^26)
//   bits 27..53  biased axial i   (i + 2^26)
//   bits 54..58  face             (0..19)
//   bits 59..62  resolution       (0..15)
//   bit  63      invalid flag     (0 for every valid cell)
//
// The packed form sorts by resolution, then face, then lattice position,
// which keeps cells of one region contiguous in sorted containers and in
// the serialized inventory.

namespace pol::hex {

using CellIndex = uint64_t;

// The reserved invalid identifier (invalid flag set).
inline constexpr CellIndex kInvalidCell = ~0ull;

// Components of a packed index.
struct CellParts {
  int res = 0;
  int face = 0;
  int64_t i = 0;
  int64_t j = 0;
};

// Largest |i| / |j| representable.
inline constexpr int64_t kMaxAxialCoord = (int64_t{1} << 26) - 1;

// Packs the components; returns kInvalidCell when out of range.
CellIndex PackCell(int res, int face, int64_t i, int64_t j);

// Unpacks `cell`; returns false (leaving *parts untouched) when the
// index is invalid.
bool UnpackCell(CellIndex cell, CellParts* parts);

// True for a well-formed cell index.
bool IsValidCell(CellIndex cell);

// Resolution of a valid cell; -1 for invalid input.
int CellResolution(CellIndex cell);

// "r6:f12:(103,-25)" style debug representation.
std::string CellToString(CellIndex cell);

}  // namespace pol::hex

#endif  // POL_HEXGRID_CELL_INDEX_H_
