#ifndef POL_HEXGRID_ICOSAHEDRON_H_
#define POL_HEXGRID_ICOSAHEDRON_H_

#include <array>
#include <vector>

#include "geo/gnomonic.h"
#include "geo/latlng.h"

// The icosahedral base of the hexagonal grid.
//
// The sphere is split into 20 regions, one per icosahedron face; each
// region carries a gnomonic projection centred on the face. The grid lays
// a hexagonal lattice in each face's tangent plane (see hex_math.h). A
// point belongs to the face whose centre is nearest (maximum dot
// product); ties — points equidistant from several centres — go to the
// lowest face id, which makes the assignment a total function.

namespace pol::hex {

inline constexpr int kNumFaces = 20;
inline constexpr int kNumVertices = 12;

class Icosahedron {
 public:
  // The process-wide instance (construction is cheap but the projections
  // should be shared).
  static const Icosahedron& Get();

  // Face whose centre is nearest to `p` (unit vector).
  int FindFace(const geo::Vec3& p) const;

  const geo::Gnomonic& FaceProjection(int face) const {
    return projections_[static_cast<size_t>(face)];
  }

  const geo::Vec3& FaceCenter(int face) const {
    return centers_[static_cast<size_t>(face)];
  }

  // The three vertices of a face (unit vectors).
  std::array<geo::Vec3, 3> FaceVertices(int face) const;

  // Index of the icosahedron vertex nearest to `p`.
  int NearestVertex(const geo::Vec3& p) const;

  const geo::Vec3& Vertex(int v) const {
    return vertices_[static_cast<size_t>(v)];
  }

  // The lowest-id face incident to a vertex: the deterministic owner of
  // the vertex neighbourhood (see hexgrid.cc's vertex fallback).
  int VertexOwnerFace(int vertex) const {
    return vertex_owner_face_[static_cast<size_t>(vertex)];
  }

  // Planar area of one projected face triangle in the tangent plane, in
  // units of Earth radii squared. All faces are congruent.
  double PlanarFaceArea() const { return planar_face_area_; }

  // Angular radius (radians) from a face centre to its vertices.
  double FaceCircumradiusRad() const { return face_circumradius_rad_; }

 private:
  Icosahedron();

  std::array<geo::Vec3, kNumVertices> vertices_;
  std::array<std::array<int, 3>, kNumFaces> faces_;
  std::array<geo::Vec3, kNumFaces> centers_;
  std::array<int, kNumVertices> vertex_owner_face_;
  std::vector<geo::Gnomonic> projections_;
  double planar_face_area_ = 0.0;
  double face_circumradius_rad_ = 0.0;
};

}  // namespace pol::hex

#endif  // POL_HEXGRID_ICOSAHEDRON_H_
