#include "hexgrid/icosahedron.h"

#include <cmath>

#include "common/check.h"

namespace pol::hex {
namespace {

// The 12 vertices of a regular icosahedron: cyclic permutations of
// (0, +-1, +-phi), normalized to the unit sphere.
std::array<geo::Vec3, kNumVertices> MakeVertices() {
  const double phi = (1.0 + std::sqrt(5.0)) / 2.0;
  const geo::Vec3 raw[kNumVertices] = {
      {0, 1, phi},  {0, 1, -phi},  {0, -1, phi},  {0, -1, -phi},
      {1, phi, 0},  {1, -phi, 0},  {-1, phi, 0},  {-1, -phi, 0},
      {phi, 0, 1},  {phi, 0, -1},  {-phi, 0, 1},  {-phi, 0, -1},
  };
  std::array<geo::Vec3, kNumVertices> out;
  for (int i = 0; i < kNumVertices; ++i) out[static_cast<size_t>(i)] = raw[i].Normalized();
  return out;
}

}  // namespace

Icosahedron::Icosahedron() : vertices_(MakeVertices()) {
  // Derive the face list from the geometry: a face is any vertex triple
  // whose pairwise distances all equal the (minimum) edge length.
  // Iterating i<j<k ascending fixes a deterministic face order.
  double edge = 1e9;
  for (int i = 0; i < kNumVertices; ++i) {
    for (int j = i + 1; j < kNumVertices; ++j) {
      const double d =
          (vertices_[static_cast<size_t>(i)] - vertices_[static_cast<size_t>(j)]).Norm();
      if (d < edge) edge = d;
    }
  }
  const double tolerance = edge * 1e-6;
  int face_count = 0;
  for (int i = 0; i < kNumVertices && face_count < kNumFaces; ++i) {
    for (int j = i + 1; j < kNumVertices; ++j) {
      if (std::fabs((vertices_[static_cast<size_t>(i)] - vertices_[static_cast<size_t>(j)]).Norm() -
                    edge) > tolerance) {
        continue;
      }
      for (int k = j + 1; k < kNumVertices; ++k) {
        if (std::fabs((vertices_[static_cast<size_t>(i)] - vertices_[static_cast<size_t>(k)]).Norm() -
                      edge) > tolerance ||
            std::fabs((vertices_[static_cast<size_t>(j)] - vertices_[static_cast<size_t>(k)]).Norm() -
                      edge) > tolerance) {
          continue;
        }
        faces_[static_cast<size_t>(face_count)] = {i, j, k};
        ++face_count;
      }
    }
  }
  POL_CHECK(face_count == kNumFaces) << "expected 20 icosahedron faces, got "
                                     << face_count;

  // Owner face of each vertex: lowest face id incident to it.
  vertex_owner_face_.fill(-1);
  for (int f = 0; f < kNumFaces; ++f) {
    for (const int v : faces_[static_cast<size_t>(f)]) {
      if (vertex_owner_face_[static_cast<size_t>(v)] < 0) {
        vertex_owner_face_[static_cast<size_t>(v)] = f;
      }
    }
  }

  projections_.reserve(kNumFaces);
  for (int f = 0; f < kNumFaces; ++f) {
    const auto& idx = faces_[static_cast<size_t>(f)];
    const geo::Vec3 center = (vertices_[static_cast<size_t>(idx[0])] +
                              vertices_[static_cast<size_t>(idx[1])] +
                              vertices_[static_cast<size_t>(idx[2])])
                                 .Normalized();
    centers_[static_cast<size_t>(f)] = center;
    // Orient each face plane toward its first vertex so the lattice
    // orientation is deterministic.
    projections_.emplace_back(center, vertices_[static_cast<size_t>(idx[0])]);
  }

  // Planar area of a projected face triangle (congruent across faces).
  {
    const geo::Gnomonic& proj = projections_[0];
    geo::PlanePoint p[3];
    for (int v = 0; v < 3; ++v) {
      bool ok = false;
      p[v] = proj.Forward(vertices_[static_cast<size_t>(faces_[0][static_cast<size_t>(v)])], &ok);
      POL_CHECK(ok);
    }
    planar_face_area_ = 0.5 * std::fabs((p[1].u - p[0].u) * (p[2].v - p[0].v) -
                                        (p[2].u - p[0].u) * (p[1].v - p[0].v));
    face_circumradius_rad_ = geo::AngleBetween(
        centers_[0], vertices_[static_cast<size_t>(faces_[0][0])]);
  }
}

const Icosahedron& Icosahedron::Get() {
  // NOLINTNEXTLINE(pollint:naked-new): leaky singleton, no destruction order.
  static const Icosahedron& instance = *new Icosahedron();
  return instance;
}

int Icosahedron::NearestVertex(const geo::Vec3& p) const {
  int best = 0;
  double best_dot = -2.0;
  for (int v = 0; v < kNumVertices; ++v) {
    const double d = p.Dot(vertices_[static_cast<size_t>(v)]);
    if (d > best_dot) {
      best_dot = d;
      best = v;
    }
  }
  return best;
}

int Icosahedron::FindFace(const geo::Vec3& p) const {
  int best = 0;
  double best_dot = -2.0;
  for (int f = 0; f < kNumFaces; ++f) {
    const double d = p.Dot(centers_[static_cast<size_t>(f)]);
    if (d > best_dot) {
      best_dot = d;
      best = f;
    }
  }
  return best;
}

std::array<geo::Vec3, 3> Icosahedron::FaceVertices(int face) const {
  const auto& idx = faces_[static_cast<size_t>(face)];
  return {vertices_[static_cast<size_t>(idx[0])],
          vertices_[static_cast<size_t>(idx[1])],
          vertices_[static_cast<size_t>(idx[2])]};
}

}  // namespace pol::hex
