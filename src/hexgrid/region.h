#ifndef POL_HEXGRID_REGION_H_
#define POL_HEXGRID_REGION_H_

#include <vector>

#include "geo/latlng.h"
#include "hexgrid/cell_index.h"

// Region operations over the grid: polygon/box fills, cell-set
// compaction across the hierarchy, and line tracing. These mirror the
// corresponding H3 API surface (polygonToCells, compactCells,
// uncompactCells, gridPathCells) and back the regional queries of the
// benches and the adaptive inventory.

namespace pol::hex {

// Cells at `res` covering the given lat/lng box (any cell containing
// some point of the box). The box must not wrap the antimeridian; split
// wrapping boxes into two calls.
std::vector<CellIndex> BoxToCells(double lat_min, double lat_max,
                                  double lng_min, double lng_max, int res);

// Cells at `res` whose centre lies inside the simple polygon `ring`
// (vertices in order, implicitly closed; no antimeridian wrap).
std::vector<CellIndex> PolygonToCells(const std::vector<geo::LatLng>& ring,
                                      int res);

// Point-in-polygon test used by PolygonToCells (exposed for tests):
// even-odd rule in lat/lng space.
bool PointInPolygon(const std::vector<geo::LatLng>& ring,
                    const geo::LatLng& p);

// Replaces every complete sibling set by its parent, recursively: the
// smallest mixed-resolution set covering exactly the same fine cells.
// Because parent/child containment is approximate (as in our aperture-7
// construction), "complete" is defined through CellToChildren: a parent
// is emitted when ALL of its children (per CellToChildren) are present.
// Input cells must all share one resolution.
std::vector<CellIndex> CompactCells(const std::vector<CellIndex>& cells);

// Expands a mixed-resolution set back to uniform `res` (every cell's
// descendants at `res`, per CellToChildren). Inverse of CompactCells.
std::vector<CellIndex> UncompactCells(const std::vector<CellIndex>& cells,
                                      int res);

// The chain of cells a great-circle segment from `a` to `b` passes
// through at `res`, in order, deduplicated. Both endpoints' cells are
// included.
std::vector<CellIndex> GridPathCells(const geo::LatLng& a,
                                     const geo::LatLng& b, int res);

}  // namespace pol::hex

#endif  // POL_HEXGRID_REGION_H_
