#ifndef POL_HEXGRID_HEX_MATH_H_
#define POL_HEXGRID_HEX_MATH_H_

#include <array>
#include <cstdint>

#include "geo/gnomonic.h"

// Planar hexagonal-lattice mathematics.
//
// Each resolution r lays a pointy-top hexagonal lattice in every face's
// tangent plane. The lattice origin (axial (0,0)) is the face centre at
// every resolution, and resolution r+1 is the resolution-r lattice scaled
// by 1/sqrt(7) and rotated by atan(sqrt(3)/5) ~= 19.107 degrees — the
// aperture-7 construction used by H3 (each cell has ~7 children).
//
// Axial coordinates (i, j) follow the standard convention: the hex centre
// of cell (i, j) sits at  s * (sqrt(3)*i + sqrt(3)/2*j,  3/2*j)  before
// the per-resolution rotation, where s is the hex circumradius.

namespace pol::hex {

inline constexpr int kMaxResolution = 15;

// Rotation between consecutive resolutions: atan(sqrt(3)/5).
double ApertureRotationRad();

// Axial lattice coordinates of a hex cell within one face plane.
struct Axial {
  int64_t i = 0;
  int64_t j = 0;

  bool operator==(const Axial& o) const { return i == o.i && j == o.j; }
};

// The six axial offsets of a hexagon's neighbours, in counter-clockwise
// order starting from +i.
const std::array<Axial, 6>& NeighborOffsets();

// Rounds fractional axial coordinates to the nearest hex centre (cube
// rounding).
Axial AxialRound(double qi, double qj);

// Hex-grid distance between two axial coordinates (number of steps).
int64_t AxialDistance(const Axial& a, const Axial& b);

// Per-resolution lattice geometry: hex size and lattice rotation.
class LatticeParams {
 public:
  // Parameters of resolution `res` in [0, kMaxResolution].
  static const LatticeParams& Get(int res);

  // Hex circumradius (centre to vertex) in tangent-plane units (Earth
  // radii at the face centre).
  double hex_size() const { return hex_size_; }

  // Plane position of the centre of cell (i, j); accepts fractional
  // coordinates for interpolation.
  geo::PlanePoint AxialToPlane(double i, double j) const;

  // Fractional axial coordinates of a plane point.
  void PlaneToAxialFrac(const geo::PlanePoint& p, double* qi, double* qj) const;

  // Nearest hex cell to a plane point.
  Axial PlaneToAxial(const geo::PlanePoint& p) const;

  // Plane positions of the six corners of cell (i, j), counter-clockwise.
  std::array<geo::PlanePoint, 6> CellCorners(const Axial& cell) const;

  // Used by the internal resolution table; prefer Get().
  LatticeParams(double hex_size, double rotation_rad);

 private:
  double hex_size_;
  double cos_rot_;
  double sin_rot_;
};

// Number of cells in the global grid at a resolution. Matches the H3
// cell-count formula 2 + 120 * 7^res, which our lattice is calibrated to
// (the hex size is chosen so the mean cell area is Earth area divided by
// this count).
uint64_t NumCells(int res);

// Mean cell area at a resolution, km^2 (res 6 ~= 36 km^2, res 7 ~= 5 km^2).
double MeanCellAreaKm2(int res);

// Approximate hexagon edge length at a resolution, km.
double EdgeLengthKm(int res);

}  // namespace pol::hex

#endif  // POL_HEXGRID_HEX_MATH_H_
