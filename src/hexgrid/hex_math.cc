#include "hexgrid/hex_math.h"

#include <cmath>
#include <vector>

#include "common/check.h"
#include "geo/latlng.h"
#include "hexgrid/icosahedron.h"

namespace pol::hex {
namespace {

constexpr double kSqrt3 = 1.7320508075688772;

// Hex circumradius for resolution 0, in tangent-plane units. Chosen so
// that the planar face triangles tile into NumCells(0) hexes globally,
// which calibrates the mean spherical cell area to EarthArea/NumCells(r)
// at every resolution.
double Res0HexSize() {
  const double face_area = Icosahedron::Get().PlanarFaceArea();
  const double target_cells = static_cast<double>(NumCells(0));
  const double hex_area = 20.0 * face_area / target_cells;
  // Planar hexagon area = (3*sqrt(3)/2) * s^2.
  return std::sqrt(2.0 * hex_area / (3.0 * kSqrt3));
}

const std::vector<LatticeParams>* BuildTable() {
  const double s0 = Res0HexSize();
  const double rot_step = ApertureRotationRad();
  // Lives for the process lifetime, anchored in LatticeParams::Get's
  // static so leak checkers see it as reachable.
  // NOLINTNEXTLINE(pollint:naked-new): intentionally immortal static table.
  auto* table = new std::vector<LatticeParams>();
  table->reserve(kMaxResolution + 1);
  double size = s0;
  double rot = 0.0;
  for (int r = 0; r <= kMaxResolution; ++r) {
    table->push_back(LatticeParams(size, rot));
    size /= std::sqrt(7.0);
    rot += rot_step;
  }
  return table;
}

}  // namespace

double ApertureRotationRad() { return std::atan(kSqrt3 / 5.0); }

const std::array<Axial, 6>& NeighborOffsets() {
  static constexpr std::array<Axial, 6> kOffsets = {
      Axial{1, 0}, Axial{1, -1}, Axial{0, -1},
      Axial{-1, 0}, Axial{-1, 1}, Axial{0, 1}};
  return kOffsets;
}

Axial AxialRound(double qi, double qj) {
  // Cube rounding: x + y + z == 0 must hold after rounding; fix the
  // component with the largest rounding error.
  const double x = qi;
  const double z = qj;
  const double y = -x - z;
  double rx = std::round(x);
  double ry = std::round(y);
  double rz = std::round(z);
  const double dx = std::fabs(rx - x);
  const double dy = std::fabs(ry - y);
  const double dz = std::fabs(rz - z);
  if (dx > dy && dx > dz) {
    rx = -ry - rz;
  } else if (dy > dz) {
    // y is implicit in axial coordinates; nothing to fix.
  } else {
    rz = -rx - ry;
  }
  return Axial{static_cast<int64_t>(rx), static_cast<int64_t>(rz)};
}

int64_t AxialDistance(const Axial& a, const Axial& b) {
  const int64_t di = a.i - b.i;
  const int64_t dj = a.j - b.j;
  return (std::llabs(di) + std::llabs(dj) + std::llabs(di + dj)) / 2;
}

LatticeParams::LatticeParams(double hex_size, double rotation_rad)
    : hex_size_(hex_size),
      cos_rot_(std::cos(rotation_rad)),
      sin_rot_(std::sin(rotation_rad)) {}

const LatticeParams& LatticeParams::Get(int res) {
  POL_CHECK(res >= 0 && res <= kMaxResolution) << "bad resolution " << res;
  static const std::vector<LatticeParams>* table = BuildTable();
  return (*table)[static_cast<size_t>(res)];
}

geo::PlanePoint LatticeParams::AxialToPlane(double i, double j) const {
  const double u = hex_size_ * (kSqrt3 * i + kSqrt3 / 2.0 * j);
  const double v = hex_size_ * (1.5 * j);
  // Apply the per-resolution rotation.
  return {u * cos_rot_ - v * sin_rot_, u * sin_rot_ + v * cos_rot_};
}

void LatticeParams::PlaneToAxialFrac(const geo::PlanePoint& p, double* qi,
                                     double* qj) const {
  // Undo the rotation, then invert the axial basis.
  const double u = p.u * cos_rot_ + p.v * sin_rot_;
  const double v = -p.u * sin_rot_ + p.v * cos_rot_;
  *qj = (2.0 / 3.0) * v / hex_size_;
  *qi = (u / kSqrt3 - v / 3.0) / hex_size_;
}

Axial LatticeParams::PlaneToAxial(const geo::PlanePoint& p) const {
  double qi = 0.0;
  double qj = 0.0;
  PlaneToAxialFrac(p, &qi, &qj);
  return AxialRound(qi, qj);
}

std::array<geo::PlanePoint, 6> LatticeParams::CellCorners(
    const Axial& cell) const {
  const geo::PlanePoint center =
      AxialToPlane(static_cast<double>(cell.i), static_cast<double>(cell.j));
  std::array<geo::PlanePoint, 6> corners;
  const double rot = std::atan2(sin_rot_, cos_rot_);
  for (int k = 0; k < 6; ++k) {
    // Pointy-top hexagon: first corner at 30 degrees, then every 60.
    const double angle = rot + geo::kPi / 6.0 + k * geo::kPi / 3.0;
    corners[static_cast<size_t>(k)] = {center.u + hex_size_ * std::cos(angle),
                                       center.v + hex_size_ * std::sin(angle)};
  }
  return corners;
}

uint64_t NumCells(int res) {
  uint64_t pow7 = 1;
  for (int r = 0; r < res; ++r) pow7 *= 7;
  return 2 + 120 * pow7;
}

double MeanCellAreaKm2(int res) {
  return geo::kEarthAreaKm2 / static_cast<double>(NumCells(res));
}

double EdgeLengthKm(int res) {
  // Edge length equals the circumradius for a regular hexagon; plane
  // units are Earth radii at the face centre.
  return LatticeParams::Get(res).hex_size() * geo::kEarthRadiusKm;
}

}  // namespace pol::hex
