#ifndef POL_STORE_SNAPSHOT_FORMAT_H_
#define POL_STORE_SNAPSHOT_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

// POLSNAP1 — the versioned, section-framed, CRC-checksummed container
// every snapshot-store generation is written in. The container knows
// nothing about inventories: it frames opaque, independently
// checksummed byte sections addressed by numeric id, 64-byte aligned so
// a reader can mmap the file and serve fixed-width records (u64 keys,
// offsets) straight out of the mapping — zero parse, zero copy. The
// inventory payload schema on top lives in core/snapshot_codec.h.
//
//   offset 0   magic "POLSNAP1"                      8 B
//          8   u32 format version (= 1)              4 B
//         12   u32 section count                     4 B
//         16   u64 total file size                   8 B
//         24   u64 reserved (0)                      8 B
//         32   section table: count * 32 B entries
//               { u32 id, u32 crc32(payload), u64 offset,
//                 u64 size, u64 reserved (0) }
//          +   u32 crc32(header + section table)
//          +   zero padding to the next 64 B boundary
//          +   section payloads, each 64 B-aligned, zero-padded
//
// All integers little-endian (asserted at compile time). Validation is
// total: magic, version, bounds of every table entry, alignment, the
// header CRC and every section CRC are checked before a single payload
// byte is trusted, and every failure is a clean kDataLoss — the
// truncation/bit-flip fuzz suite holds this as an invariant. After
// Validate() succeeds a reader may serve the mapping without further
// checks.

namespace pol::store {

inline constexpr std::string_view kSnapshotMagic = "POLSNAP1";
inline constexpr uint32_t kSnapshotFormatVersion = 1;
inline constexpr size_t kSnapshotHeaderBytes = 32;
inline constexpr size_t kSnapshotTableEntryBytes = 32;
inline constexpr size_t kSnapshotSectionAlignment = 64;

// Assembles a POLSNAP1 file in memory. Sections are laid out in the
// order added; ids must be unique (POL_CHECKed).
class SnapshotFileBuilder {
 public:
  // Copies `payload` into the builder under `id`.
  void AddSection(uint32_t id, std::string_view payload);

  // Frames everything and returns the complete file image.
  std::string Finish() const;

 private:
  struct Pending {
    uint32_t id;
    std::string payload;
  };
  std::vector<Pending> sections_;
};

// A validated, non-owning view over a POLSNAP1 image (typically a
// MappedFile's bytes; the mapping must outlive the view).
class SnapshotFileView {
 public:
  struct SectionInfo {
    uint32_t id = 0;
    uint32_t crc32 = 0;
    uint64_t offset = 0;
    uint64_t size = 0;
  };

  // Fully validates `bytes` (framing, bounds, header CRC, every
  // section CRC). Every malformation — truncation anywhere, any
  // flipped bit — yields kDataLoss, never a crash or a partial view.
  static Result<SnapshotFileView> Validate(std::string_view bytes);

  // Payload of the section with `id`; kDataLoss when absent (a missing
  // section in an otherwise valid file is still unusable data).
  Result<std::string_view> Section(uint32_t id) const;
  bool HasSection(uint32_t id) const;

  // Table order (= layout order), for tooling like `polinv snapshots`.
  const std::vector<SectionInfo>& Sections() const { return sections_; }

  size_t file_size() const { return bytes_.size(); }

 private:
  std::string_view bytes_;
  std::vector<SectionInfo> sections_;
};

// Little-endian fixed-width accessors shared by the codec layer.
// Reading through memcpy is the defined-behavior way to load from a
// mapped byte range; compilers lower it to a single move.
uint32_t LoadU32(const char* p);
uint64_t LoadU64(const char* p);
void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);

}  // namespace pol::store

#endif  // POL_STORE_SNAPSHOT_FORMAT_H_
