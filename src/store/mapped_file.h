#ifndef POL_STORE_MAPPED_FILE_H_
#define POL_STORE_MAPPED_FILE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"

// Read-only memory mapping of a snapshot file. The mapping owns the
// pages for its lifetime, so string_views handed out by
// SnapshotFileView stay valid as long as the MappedFile (the mapped
// snapshot keeps it alive for the life of the serving snapshot).
//
// When mmap is unavailable (exotic filesystems, size 0), Open falls
// back to reading the file into an anonymous heap buffer — same
// interface, same validation path, just not zero-copy. Callers can
// observe which path was taken via mapped() for telemetry.

namespace pol::store {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;

  // Maps `path` read-only. NotFound if the file does not exist, IoError
  // on any other failure. An empty file maps to an empty view (which
  // format validation then rejects as too small).
  static Result<MappedFile> Open(const std::string& path);

  std::string_view bytes() const {
    return std::string_view(static_cast<const char*>(data_), size_);
  }
  size_t size() const { return size_; }
  // True when the bytes are a real mmap (zero-copy); false on the heap
  // fallback path.
  bool mapped() const { return mapped_; }

 private:
  void Release();

  const void* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::string heap_;  // Owns the bytes on the fallback path.
};

}  // namespace pol::store

#endif  // POL_STORE_MAPPED_FILE_H_
