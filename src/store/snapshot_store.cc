#include "store/snapshot_store.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <string_view>
#include <system_error>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/status.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/atomic_file.h"
#include "store/mapped_file.h"
#include "store/snapshot_format.h"
#include "store/store_metric_names.h"

namespace pol::store {
namespace {

constexpr char kGenPrefix[] = "snap-";
constexpr char kGenSuffix[] = ".pol";
constexpr std::string_view kManifestMagic = "POLSNAPMF1";

// "snap-<digits>.pol" -> generation; 0 when the name does not match
// (generations start at 1, so 0 doubles as the sentinel).
uint64_t ParseGeneration(const std::string& filename) {
  const std::string_view name(filename);
  const std::string_view prefix(kGenPrefix);
  const std::string_view suffix(kGenSuffix);
  if (name.size() <= prefix.size() + suffix.size()) return 0;
  if (name.substr(0, prefix.size()) != prefix) return 0;
  if (name.substr(name.size() - suffix.size()) != suffix) return 0;
  const std::string_view digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  uint64_t generation = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return 0;
    generation = generation * 10 + static_cast<uint64_t>(c - '0');
  }
  return generation;
}

}  // namespace

SnapshotStore::SnapshotStore(SnapshotStoreOptions options)
    : options_(std::move(options)) {
  if (options_.keep < 1) options_.keep = 1;
}

std::string SnapshotStore::GenerationPath(uint64_t generation) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%08llu%s", kGenPrefix,
                static_cast<unsigned long long>(generation), kGenSuffix);
  return (std::filesystem::path(options_.directory) / name).string();
}

std::string SnapshotStore::ManifestPath() const {
  return (std::filesystem::path(options_.directory) / "MANIFEST").string();
}

std::vector<uint64_t> SnapshotStore::ListGenerations() const {
  std::vector<uint64_t> generations;
  std::error_code ec;
  std::filesystem::directory_iterator it(options_.directory, ec);
  if (ec) return generations;
  for (const auto& entry : it) {
    const uint64_t generation =
        ParseGeneration(entry.path().filename().string());
    if (generation != 0) generations.push_back(generation);
  }
  std::sort(generations.begin(), generations.end());
  return generations;
}

Result<uint64_t> SnapshotStore::Publish(std::string_view file_image) {
  POL_TRACE_SPAN(kSpanStorePublish);
  obs::Registry& registry = obs::Registry::Global();
  const double started = obs::NowSeconds();
  // Validate before anything touches disk: a store directory only ever
  // contains images that validated at publish time, so a later open
  // failure always means storage damage, never a writer bug.
  {
    Result<SnapshotFileView> view = SnapshotFileView::Validate(file_image);
    if (!view.ok()) {
      registry.counter(kMetricStorePublishFailures)->Increment();
      return Status::InvalidArgument("refusing to publish invalid image: " +
                                     view.status().message());
    }
  }
  std::error_code ec;
  std::filesystem::create_directories(options_.directory, ec);
  if (ec) {
    registry.counter(kMetricStorePublishFailures)->Increment();
    return Status::IoError("cannot create store directory " +
                           options_.directory + ": " + ec.message());
  }
  const std::vector<uint64_t> existing = ListGenerations();
  const uint64_t generation = existing.empty() ? 1 : existing.back() + 1;
  Status written = WriteFileDurable(GenerationPath(generation), file_image);
  if (!written.ok()) {
    registry.counter(kMetricStorePublishFailures)->Increment();
    return written;
  }
  // The generation is durable from here on. A manifest failure leaves
  // it on disk (OpenLatest scans the directory, so it is served after
  // a restart) but reports the publish as failed so the caller's
  // retry/breaker machinery engages; the retry publishes the next
  // generation and re-sweeps.
  Status manifest = POL_FAILPOINT(kFailPointStoreManifest);
  if (manifest.ok()) {
    std::string body(kManifestMagic);
    body += "\ncurrent ";
    body += std::to_string(generation);
    body += "\n";
    manifest = WriteFileDurable(ManifestPath(), body);
  }
  if (!manifest.ok()) {
    registry.counter(kMetricStorePublishFailures)->Increment();
    return manifest;
  }
  // GC: keep the newest `keep` generations, sweep older ones plus any
  // stray temp files from torn publishes.
  std::vector<uint64_t> generations = ListGenerations();
  const size_t keep = static_cast<size_t>(options_.keep);
  uint64_t removed = 0;
  if (generations.size() > keep) {
    for (size_t i = 0; i + keep < generations.size(); ++i) {
      if (std::filesystem::remove(GenerationPath(generations[i]), ec)) {
        ++removed;
      }
    }
  }
  std::filesystem::directory_iterator it(options_.directory, ec);
  if (!ec) {
    for (const auto& entry : it) {
      if (entry.path().extension() == ".tmp") {
        std::error_code remove_ec;
        std::filesystem::remove(entry.path(), remove_ec);
      }
    }
  }
  if (removed > 0) {
    registry.counter(kMetricStoreGcRemoved)->Increment(removed);
    generations = ListGenerations();
  }
  registry.counter(kMetricStorePublishes)->Increment();
  registry.counter(kMetricStorePublishBytes)
      ->Increment(static_cast<uint64_t>(file_image.size()));
  registry.histogram(kMetricStorePublishSeconds)
      ->Record(obs::NowSeconds() - started);
  registry.gauge(kMetricStoreGenerations)
      ->Set(static_cast<int64_t>(generations.size()));
  registry.gauge(kMetricStoreLatestGeneration)
      ->Set(static_cast<int64_t>(generation));
  return generation;
}

Result<SnapshotStore::Opened> SnapshotStore::OpenPath(
    const std::string& path, uint64_t generation) const {
  POL_RETURN_IF_ERROR(POL_FAILPOINT(kFailPointStoreOpen));
  Opened opened;
  opened.generation = generation;
  POL_ASSIGN_OR_RETURN(opened.file, MappedFile::Open(path));
  POL_ASSIGN_OR_RETURN(opened.view,
                       SnapshotFileView::Validate(opened.file.bytes()));
  return opened;
}

Result<SnapshotStore::Opened> SnapshotStore::OpenLatest() const {
  POL_TRACE_SPAN(kSpanStoreOpen);
  obs::Registry& registry = obs::Registry::Global();
  const double started = obs::NowSeconds();
  const std::vector<uint64_t> generations = ListGenerations();
  if (generations.empty()) {
    return Status::NotFound("no generations in " + options_.directory);
  }
  std::string failures;
  for (size_t i = generations.size(); i-- > 0;) {
    const uint64_t generation = generations[i];
    Result<Opened> opened = OpenPath(GenerationPath(generation), generation);
    if (opened.ok()) {
      registry.counter(kMetricStoreOpens)->Increment();
      registry.histogram(kMetricStoreOpenSeconds)
          ->Record(obs::NowSeconds() - started);
      return opened;
    }
    // This generation is torn or damaged — fall back to the previous
    // one, exactly like checkpoint corrupt-fallback resume.
    registry.counter(kMetricStoreFallbacks)->Increment();
    if (!failures.empty()) failures += "; ";
    failures += "gen " + std::to_string(generation) + ": " +
                opened.status().ToString();
  }
  registry.counter(kMetricStoreOpenFailures)->Increment();
  return Status::DataLoss("all " + std::to_string(generations.size()) +
                          " generations unreadable: " + failures);
}

Result<SnapshotStore::Opened> SnapshotStore::OpenGeneration(
    uint64_t generation) const {
  POL_TRACE_SPAN(kSpanStoreOpen);
  obs::Registry& registry = obs::Registry::Global();
  Result<Opened> opened =
      OpenPath(GenerationPath(generation), generation);
  if (opened.ok()) {
    registry.counter(kMetricStoreOpens)->Increment();
  } else {
    registry.counter(kMetricStoreOpenFailures)->Increment();
  }
  return opened;
}

Result<uint64_t> SnapshotStore::ManifestCurrent() const {
  std::string body;
  POL_RETURN_IF_ERROR(ReadFileToString(ManifestPath(), &body));
  std::string_view rest(body);
  if (rest.substr(0, kManifestMagic.size()) != kManifestMagic) {
    return Status::DataLoss("MANIFEST: bad magic");
  }
  rest.remove_prefix(kManifestMagic.size());
  const std::string_view key = "\ncurrent ";
  if (rest.substr(0, key.size()) != key) {
    return Status::DataLoss("MANIFEST: missing current line");
  }
  rest.remove_prefix(key.size());
  uint64_t generation = 0;
  size_t digits = 0;
  while (digits < rest.size() && rest[digits] >= '0' && rest[digits] <= '9') {
    generation = generation * 10 + static_cast<uint64_t>(rest[digits] - '0');
    ++digits;
  }
  if (digits == 0 || generation == 0) {
    return Status::DataLoss("MANIFEST: bad generation number");
  }
  return generation;
}

}  // namespace pol::store
