#ifndef POL_STORE_SNAPSHOT_STORE_H_
#define POL_STORE_SNAPSHOT_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "store/mapped_file.h"
#include "store/snapshot_format.h"

// A generation-numbered directory of POLSNAP1 files — the durable home
// of sealed inventories. Layout:
//
//   <dir>/MANIFEST          "POLSNAPMF1\ncurrent <gen>\n"  (advisory)
//   <dir>/snap-00000001.pol generation 1
//   <dir>/snap-00000002.pol generation 2 ...
//
// Publish is atomic (temp + fsync + rename + dir fsync, see
// atomic_file.h) and monotone: a new generation never overwrites an
// old one, so a reader that mapped generation N is untouched by the
// publish of N+1. The *directory scan* is the source of truth for
// which generations exist; the MANIFEST is advisory metadata for
// humans and tooling (`polinv snapshots`), because trusting a file
// that can itself be torn would reintroduce the problem the scan
// solves. OpenLatest walks generations newest-first and falls back
// past torn, truncated or CRC-failing files (counted in
// `store.fallbacks`), mirroring checkpoint corrupt-fallback resume.
//
// Thread safety: OpenLatest/OpenGeneration/ListGenerations are safe
// to call concurrently. Publish is not self-synchronizing — callers
// must serialize publishes (ServingInventory does so under its refresh
// lock). Two processes publishing into one directory is unsupported.

namespace pol::store {

struct SnapshotStoreOptions {
  std::string directory;
  // Generations kept after a successful publish (the newest `keep`
  // survive GC). Clamped to >= 1.
  int keep = 3;
};

class SnapshotStore {
 public:
  explicit SnapshotStore(SnapshotStoreOptions options);

  // A successfully opened generation: the mapping plus its validated
  // section view. The view points into the mapping, so keep both
  // together (moving Opened is fine: mmap addresses are stable and the
  // heap-fallback buffer is pointer-stable under string move).
  struct Opened {
    uint64_t generation = 0;
    MappedFile file;
    SnapshotFileView view;
  };

  // Validates `file_image` (must be a well-formed POLSNAP1 file;
  // InvalidArgument otherwise — publishing garbage is a caller bug,
  // not data loss), durably writes it as the next generation, rewrites
  // the MANIFEST, GCs generations beyond `keep`, and returns the new
  // generation number. On failure nothing visible changes except a
  // possible stray .tmp, which open paths ignore and the next
  // successful publish sweeps.
  Result<uint64_t> Publish(std::string_view file_image);

  // Maps and validates the newest readable generation, skipping
  // corrupt newer ones (each skip increments `store.fallbacks`).
  // NotFound when the directory holds no generations at all; kDataLoss
  // when generations exist but every one is unreadable.
  Result<Opened> OpenLatest() const;

  // Maps and validates one specific generation.
  Result<Opened> OpenGeneration(uint64_t generation) const;

  // Generation numbers present on disk, ascending. Missing or
  // unreadable directory yields an empty list.
  std::vector<uint64_t> ListGenerations() const;

  // Advisory MANIFEST "current" value; NotFound when absent, kDataLoss
  // when unparseable.
  Result<uint64_t> ManifestCurrent() const;

  std::string GenerationPath(uint64_t generation) const;
  std::string ManifestPath() const;
  const SnapshotStoreOptions& options() const { return options_; }

 private:
  Result<Opened> OpenPath(const std::string& path, uint64_t generation) const;

  SnapshotStoreOptions options_;
};

}  // namespace pol::store

#endif  // POL_STORE_SNAPSHOT_STORE_H_
