#include "store/mapped_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include <sys/mman.h>
#include <sys/stat.h>

#include "common/status.h"
#include "store/atomic_file.h"

namespace pol::store {

MappedFile::~MappedFile() { Release(); }

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
  Release();
  mapped_ = other.mapped_;
  size_ = other.size_;
  heap_ = std::move(other.heap_);
  // A small heap_ may live in SSO storage, so its data pointer moves
  // with it — re-derive rather than stealing other.data_.
  data_ = mapped_ ? other.data_ : static_cast<const void*>(heap_.data());
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  other.heap_.clear();
  return *this;
}

void MappedFile::Release() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<void*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  heap_.clear();
}

Result<MappedFile> MappedFile::Open(const std::string& path) {
  const int raw = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (raw < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::IoError("open failed for " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(raw, &st) != 0) {
    const Status failed = Status::IoError("fstat failed for " + path + ": " +
                                          std::strerror(errno));
    ::close(raw);
    return failed;
  }
  MappedFile file;
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ > 0) {
    void* addr =
        ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, raw, 0);
    if (addr != MAP_FAILED) {
      file.data_ = addr;
      file.mapped_ = true;
    }
  }
  ::close(raw);
  if (!file.mapped_) {
    // Heap fallback: same bytes, same validation, not zero-copy.
    Status read = ReadFileToString(path, &file.heap_);
    if (!read.ok()) return read;
    file.size_ = file.heap_.size();
    file.data_ = file.heap_.data();
  }
  return file;
}

}  // namespace pol::store
