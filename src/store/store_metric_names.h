#ifndef POL_STORE_STORE_METRIC_NAMES_H_
#define POL_STORE_STORE_METRIC_NAMES_H_

#include <string_view>

// The central name table of the persistence layer: every `store.*`
// metric, trace-span and fail-point name used by src/store/ lives here,
// mirroring core/serving_metric_names.h, so the run-report "store"
// block and `polinv snapshots` never chase a typo'd literal.

namespace pol::store {

// --- SnapshotStore publish path (snapshot_store.cc). ---
inline constexpr std::string_view kMetricStorePublishes = "store.publishes";
inline constexpr std::string_view kMetricStorePublishFailures =
    "store.publish_failures";
inline constexpr std::string_view kMetricStorePublishBytes =
    "store.publish_bytes";
inline constexpr std::string_view kMetricStorePublishSeconds =
    "store.publish_seconds";
inline constexpr std::string_view kMetricStoreGcRemoved = "store.gc_removed";

// --- SnapshotStore open path. ---
inline constexpr std::string_view kMetricStoreOpens = "store.opens";
inline constexpr std::string_view kMetricStoreOpenFailures =
    "store.open_failures";
// Generations skipped over (torn, truncated or CRC-failing) before
// OpenLatest found a good one — the durable analogue of checkpoint
// corrupt-fallback resume. The chaos tests assert this increments.
inline constexpr std::string_view kMetricStoreFallbacks = "store.fallbacks";
inline constexpr std::string_view kMetricStoreOpenSeconds =
    "store.open_seconds";
// Summary blobs that failed lazy decode at query time on a mapped
// snapshot. Unreachable when section CRCs validated at open; counted
// anyway so a logic bug surfaces as telemetry, never a crash.
inline constexpr std::string_view kMetricStoreDecodeFailures =
    "store.decode_failures";

// --- Directory state gauges. ---
inline constexpr std::string_view kMetricStoreGenerations =
    "store.generations";
inline constexpr std::string_view kMetricStoreLatestGeneration =
    "store.latest_generation";

// --- Trace spans. ---
inline constexpr std::string_view kSpanStorePublish = "store.publish";
inline constexpr std::string_view kSpanStoreOpen = "store.open";

// --- Fail points (see common/failpoint.h; faults preset only). ---
// "store.write" fires before the temp-file write, "store.rename"
// between write and the atomic rename (the torn-publish window),
// "store.manifest" before the MANIFEST rewrite, "store.open" on each
// generation open attempt (a fired open makes that generation
// unreadable, so fallback is exercised).
inline constexpr std::string_view kFailPointStoreWrite = "store.write";
inline constexpr std::string_view kFailPointStoreRename = "store.rename";
inline constexpr std::string_view kFailPointStoreManifest = "store.manifest";
inline constexpr std::string_view kFailPointStoreOpen = "store.open";

}  // namespace pol::store

#endif  // POL_STORE_STORE_METRIC_NAMES_H_
