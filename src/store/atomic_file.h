#ifndef POL_STORE_ATOMIC_FILE_H_
#define POL_STORE_ATOMIC_FILE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

// Durable, atomic file publication for the snapshot store. Unlike
// obs::WriteTextFileAtomic (tmp + rename, best-effort, used for
// telemetry exports where a torn write costs nothing), the store's
// files are the product: a publish must be *durable* before it becomes
// visible, so readers can never open a generation whose bytes might
// still be in the page cache only. The sequence is the classic one:
//
//   open(path.tmp) -> write -> fsync(file) -> close
//     -> rename(path.tmp, path) -> fsync(parent dir)
//
// The directory fsync is what makes the rename itself survive a crash;
// without it a power cut can roll the directory entry back even though
// the file data is safe. Fail points `store.write` / `store.rename`
// bracket the torn-publish window for the chaos tests.
//
// src/store/ is the one layer where raw std::ofstream / fopen is a
// pollint banned-call finding — everything durable must come through
// here.

namespace pol::store {

// Atomically and durably replaces `path` with `bytes`. The temp file is
// `path + ".tmp"`; on any failure the temp file is unlinked and `path`
// is left untouched (either the old content or still absent).
Status WriteFileDurable(const std::string& path, std::string_view bytes);

// Reads the entire file into `out` (replacing its contents). NotFound
// if the file does not exist, IoError on any other failure.
Status ReadFileToString(const std::string& path, std::string* out);

// Best-effort fsync of a directory so a completed rename inside it is
// durable. Returns IoError if the directory cannot be opened or synced.
Status SyncDirectory(const std::string& dir);

}  // namespace pol::store

#endif  // POL_STORE_ATOMIC_FILE_H_
