#include "store/snapshot_format.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/crc32.h"
#include "common/status.h"

static_assert(std::endian::native == std::endian::little,
              "POLSNAP1 is a little-endian format; big-endian hosts need "
              "byte-swapping load/store helpers before this layer can run");

namespace pol::store {
namespace {

size_t AlignUp(size_t n) {
  return (n + kSnapshotSectionAlignment - 1) &
         ~(kSnapshotSectionAlignment - 1);
}

Status Malformed(std::string why) {
  return Status::DataLoss("POLSNAP1: " + std::move(why));
}

}  // namespace

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void AppendU32(std::string* out, uint32_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void SnapshotFileBuilder::AddSection(uint32_t id, std::string_view payload) {
  for (const Pending& existing : sections_) {
    POL_CHECK(existing.id != id) << "duplicate POLSNAP1 section id " << id;
  }
  sections_.push_back(Pending{id, std::string(payload)});
}

std::string SnapshotFileBuilder::Finish() const {
  const size_t table_bytes = sections_.size() * kSnapshotTableEntryBytes;
  // Header + table + header CRC, padded to the first section boundary.
  const size_t preamble = kSnapshotHeaderBytes + table_bytes + sizeof(uint32_t);
  size_t cursor = AlignUp(preamble);
  std::vector<uint64_t> offsets;
  offsets.reserve(sections_.size());
  for (const Pending& section : sections_) {
    offsets.push_back(cursor);
    cursor = AlignUp(cursor + section.payload.size());
  }
  const size_t file_size = cursor;

  std::string out;
  out.reserve(file_size);
  out.append(kSnapshotMagic);
  AppendU32(&out, kSnapshotFormatVersion);
  AppendU32(&out, static_cast<uint32_t>(sections_.size()));
  AppendU64(&out, file_size);
  AppendU64(&out, 0);  // reserved
  for (size_t i = 0; i < sections_.size(); ++i) {
    AppendU32(&out, sections_[i].id);
    AppendU32(&out, Crc32(sections_[i].payload));
    AppendU64(&out, offsets[i]);
    AppendU64(&out, sections_[i].payload.size());
    AppendU64(&out, 0);  // reserved
  }
  AppendU32(&out, Crc32(out));
  out.resize(AlignUp(out.size()), '\0');
  for (size_t i = 0; i < sections_.size(); ++i) {
    POL_DCHECK(out.size() == offsets[i]);
    out.append(sections_[i].payload);
    out.resize(AlignUp(out.size()), '\0');
  }
  POL_DCHECK(out.size() == file_size);
  return out;
}

Result<SnapshotFileView> SnapshotFileView::Validate(std::string_view bytes) {
  if (bytes.size() < kSnapshotHeaderBytes + sizeof(uint32_t)) {
    return Malformed("file too small for header");
  }
  if (bytes.substr(0, kSnapshotMagic.size()) != kSnapshotMagic) {
    return Malformed("bad magic");
  }
  const char* p = bytes.data();
  const uint32_t version = LoadU32(p + 8);
  if (version != kSnapshotFormatVersion) {
    return Malformed("unsupported format version " + std::to_string(version));
  }
  const uint64_t count = LoadU32(p + 12);
  const uint64_t file_size = LoadU64(p + 16);
  if (file_size != bytes.size()) {
    return Malformed("header file size " + std::to_string(file_size) +
                     " != actual " + std::to_string(bytes.size()));
  }
  const uint64_t table_end =
      kSnapshotHeaderBytes + count * kSnapshotTableEntryBytes;
  if (table_end + sizeof(uint32_t) > bytes.size()) {
    return Malformed("section table overruns file");
  }
  const uint32_t stored_header_crc =
      LoadU32(p + static_cast<size_t>(table_end));
  if (Crc32(bytes.substr(0, static_cast<size_t>(table_end))) !=
      stored_header_crc) {
    return Malformed("header CRC mismatch");
  }
  SnapshotFileView view;
  view.bytes_ = bytes;
  view.sections_.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    const char* entry = p + kSnapshotHeaderBytes + i * kSnapshotTableEntryBytes;
    SectionInfo info;
    info.id = LoadU32(entry);
    info.crc32 = LoadU32(entry + 4);
    info.offset = LoadU64(entry + 8);
    info.size = LoadU64(entry + 16);
    if (info.offset % kSnapshotSectionAlignment != 0) {
      return Malformed("section " + std::to_string(info.id) + " misaligned");
    }
    if (info.offset > bytes.size() || info.size > bytes.size() - info.offset) {
      return Malformed("section " + std::to_string(info.id) +
                       " overruns file");
    }
    for (const SectionInfo& seen : view.sections_) {
      if (seen.id == info.id) {
        return Malformed("duplicate section id " + std::to_string(info.id));
      }
    }
    if (Crc32(bytes.substr(static_cast<size_t>(info.offset),
                           static_cast<size_t>(info.size))) != info.crc32) {
      return Malformed("section " + std::to_string(info.id) +
                       " CRC mismatch");
    }
    view.sections_.push_back(info);
  }
  // Every byte outside the framed regions must be zero padding. The
  // CRCs cover the header, the table and every payload; this scan
  // covers the gaps, so no single corrupted byte anywhere in the file
  // can go unnoticed (the fuzz suite flips each one).
  std::vector<std::pair<uint64_t, uint64_t>> spans;  // [begin, end)
  spans.reserve(view.sections_.size() + 1);
  spans.emplace_back(0, table_end + sizeof(uint32_t));
  for (const SectionInfo& info : view.sections_) {
    spans.emplace_back(info.offset, info.offset + info.size);
  }
  std::sort(spans.begin(), spans.end());
  uint64_t covered = 0;
  const auto zero_through = [&bytes](uint64_t begin, uint64_t end) {
    for (uint64_t b = begin; b < end; ++b) {
      if (bytes[static_cast<size_t>(b)] != '\0') return false;
    }
    return true;
  };
  for (const auto& [begin, end] : spans) {
    if (begin < covered && begin != end) {
      return Malformed("overlapping sections");
    }
    if (!zero_through(covered, begin)) {
      return Malformed("nonzero padding before offset " +
                       std::to_string(begin));
    }
    if (end > covered) covered = end;
  }
  if (!zero_through(covered, bytes.size())) {
    return Malformed("nonzero padding at end of file");
  }
  return view;
}

Result<std::string_view> SnapshotFileView::Section(uint32_t id) const {
  for (const SectionInfo& info : sections_) {
    if (info.id == id) {
      return bytes_.substr(static_cast<size_t>(info.offset),
                           static_cast<size_t>(info.size));
    }
  }
  return Malformed("missing section id " + std::to_string(id));
}

bool SnapshotFileView::HasSection(uint32_t id) const {
  for (const SectionInfo& info : sections_) {
    if (info.id == id) return true;
  }
  return false;
}

}  // namespace pol::store
