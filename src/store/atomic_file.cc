#include "store/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

#include <sys/stat.h>

#include "common/failpoint.h"
#include "common/status.h"
#include "store/store_metric_names.h"

namespace pol::store {
namespace {

Status Errno(std::string_view op, const std::string& path) {
  std::string msg(op);
  msg += " failed for ";
  msg += path;
  msg += ": ";
  msg += std::strerror(errno);
  return Status::IoError(std::move(msg));
}

// RAII fd so every early return closes. Close errors on the write path
// are checked explicitly before the rename; this is the safety net.
class Fd {
 public:
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  // Closes now and reports the result; the destructor becomes a no-op.
  int CloseNow() {
    const int rc = ::close(fd_);
    fd_ = -1;
    return rc;
  }

 private:
  int fd_;
};

Status WriteAll(int fd, std::string_view bytes, const std::string& path) {
  const char* data = bytes.data();
  size_t remaining = bytes.size();
  while (remaining > 0) {
    const ssize_t n = ::write(fd, data, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    data += n;
    remaining -= static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFileDurable(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  {
    Status injected = POL_FAILPOINT(kFailPointStoreWrite);
    if (!injected.ok()) return injected;
    const int raw =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (raw < 0) return Errno("open", tmp);
    Fd fd(raw);
    Status written = WriteAll(fd.get(), bytes, tmp);
    if (written.ok() && ::fsync(fd.get()) != 0) written = Errno("fsync", tmp);
    if (written.ok() && fd.CloseNow() != 0) written = Errno("close", tmp);
    if (!written.ok()) {
      ::unlink(tmp.c_str());
      return written;
    }
  }
  Status injected = POL_FAILPOINT(kFailPointStoreRename);
  if (!injected.ok()) {
    // The torn-publish window: the temp file is durable but the target
    // was never replaced. Leave the .tmp behind, exactly as a crash
    // here would — the store's open path must ignore stray temps.
    return injected;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status failed = Errno("rename", path);
    ::unlink(tmp.c_str());
    return failed;
  }
  // Make the rename itself durable: sync the containing directory.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  return SyncDirectory(dir);
}

Status ReadFileToString(const std::string& path, std::string* out) {
  const int raw = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (raw < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Errno("open", path);
  }
  Fd fd(raw);
  out->clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd.get(), buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read", path);
    }
    if (n == 0) break;
    out->append(buf, static_cast<size_t>(n));
  }
  return Status::OK();
}

Status SyncDirectory(const std::string& dir) {
  const int raw = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (raw < 0) return Errno("open dir", dir);
  Fd fd(raw);
  if (::fsync(fd.get()) != 0) return Errno("fsync dir", dir);
  return Status::OK();
}

}  // namespace pol::store
