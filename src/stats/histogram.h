#ifndef POL_STATS_HISTOGRAM_H_
#define POL_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

// Fixed-width binned counters — the "Bins" statistic of Table 3. The
// paper splits course and heading into 30-degree bins; the class is
// generic over any [lo, hi) range. A wrapping histogram folds values
// modulo the range (for angles); a clamping one counts out-of-range
// values in the edge bins.

namespace pol::stats {

class Histogram {
 public:
  // Creates `num_bins` equal bins over [lo, hi). `wrap` selects modular
  // folding (angles) vs clamping. num_bins must be >= 1 and hi > lo.
  Histogram(double lo, double hi, int num_bins, bool wrap);

  // A 12-bin wrapping histogram over [0, 360): the paper's course /
  // heading configuration.
  static Histogram ForDegrees30() { return Histogram(0.0, 360.0, 12, true); }

  void Add(double value);

  // Merge requires identical bin configuration; returns
  // FailedPrecondition otherwise.
  Status Merge(const Histogram& other);

  uint64_t total() const { return total_; }
  int num_bins() const { return static_cast<int>(counts_.size()); }
  uint64_t bin_count(int bin) const {
    return counts_[static_cast<size_t>(bin)];
  }
  // Inclusive-exclusive bounds of a bin.
  double bin_lo(int bin) const { return lo_ + bin * width_; }
  double bin_hi(int bin) const { return lo_ + (bin + 1) * width_; }

  // Index of the bin a value falls into.
  int BinOf(double value) const;

  // Bin with the highest count (lowest index wins ties); -1 when empty.
  int ModeBin() const;

  // Fraction of observations in `bin`; 0 when empty.
  double Fraction(int bin) const;

  void Serialize(std::string* out) const;
  Status Deserialize(std::string_view* input);

 private:
  double lo_;
  double hi_;
  double width_;
  bool wrap_;
  uint64_t total_ = 0;
  std::vector<uint64_t> counts_;
};

}  // namespace pol::stats

#endif  // POL_STATS_HISTOGRAM_H_
