#ifndef POL_STATS_WELFORD_H_
#define POL_STATS_WELFORD_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

// Streaming mean / standard deviation (Welford's online algorithm, with
// Chan's parallel update for Merge). Provides the Mean and Std columns
// of the paper's feature set (Table 3) for speed, ETO and ATA.
//
// All sketches in pol::stats share the same contract:
//   * Add(value) streams one observation;
//   * Merge(other) combines two partial sketches, and the result is
//     independent of how observations were split between them (this is
//     what makes the reduce phase of the flow engine correct);
//   * Serialize/Deserialize round-trip the state through the inventory's
//     binary format.

namespace pol::stats {

class Welford {
 public:
  Welford() = default;

  void Add(double value);
  void Merge(const Welford& other);

  uint64_t count() const { return count_; }
  // Mean of the observations; 0 when empty.
  double Mean() const { return count_ == 0 ? 0.0 : mean_; }
  // Population variance; 0 for fewer than two observations.
  double Variance() const;
  double StdDev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  void Serialize(std::string* out) const;
  Status Deserialize(std::string_view* input);

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace pol::stats

#endif  // POL_STATS_WELFORD_H_
