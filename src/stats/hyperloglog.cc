#include "stats/hyperloglog.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <string_view>

#include "common/check.h"
#include "common/rng.h"
#include "common/varint.h"

namespace pol::stats {
namespace {

uint64_t HashKey(uint64_t key) {
  uint64_t state = key;
  return SplitMix64(state);
}

double AlphaM(size_t m) {
  switch (m) {
    case 16:
      return 0.673;
    case 32:
      return 0.697;
    case 64:
      return 0.709;
    default:
      return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

}  // namespace

HyperLogLog::HyperLogLog(int precision)
    : precision_(std::clamp(precision, 4, 16)) {}

void HyperLogLog::Add(uint64_t key) { InsertHash(HashKey(key)); }

void HyperLogLog::InsertHash(uint64_t hash) {
  if (!dense_.empty()) {
    DenseAdd(hash);
    return;
  }
  const auto it = std::lower_bound(sparse_.begin(), sparse_.end(), hash);
  if (it != sparse_.end() && *it == hash) return;
  sparse_.insert(it, hash);
  if (sparse_.size() > kSparseLimit) Densify();
}

void HyperLogLog::Densify() {
  dense_.assign(size_t{1} << precision_, 0);
  for (const uint64_t hash : sparse_) DenseAdd(hash);
  sparse_.clear();
  sparse_.shrink_to_fit();
}

void HyperLogLog::DenseAdd(uint64_t hash) {
  const size_t index = static_cast<size_t>(hash >> (64 - precision_));
  const uint64_t remaining = hash << precision_;
  // Rank of the leftmost 1-bit in the remaining 64-precision bits, 1-based.
  const int rank =
      remaining == 0 ? (64 - precision_ + 1) : (__builtin_clzll(remaining) + 1);
  if (static_cast<uint8_t>(rank) > dense_[index]) {
    dense_[index] = static_cast<uint8_t>(rank);
  }
}

void HyperLogLog::Merge(const HyperLogLog& other) {
  POL_CHECK(other.precision_ == precision_)
      << "merging HyperLogLogs of different precision";
  if (other.IsSparse()) {
    for (const uint64_t hash : other.sparse_) InsertHash(hash);
    return;
  }
  if (IsSparse()) Densify();
  for (size_t i = 0; i < dense_.size(); ++i) {
    dense_[i] = std::max(dense_[i], other.dense_[i]);
  }
}

double HyperLogLog::Estimate() const {
  if (IsSparse()) return static_cast<double>(sparse_.size());
  const size_t m = dense_.size();
  double inverse_sum = 0.0;
  size_t zero_registers = 0;
  for (const uint8_t reg : dense_) {
    inverse_sum += std::ldexp(1.0, -static_cast<int>(reg));
    if (reg == 0) ++zero_registers;
  }
  const double raw =
      AlphaM(m) * static_cast<double>(m) * static_cast<double>(m) / inverse_sum;
  // Small-range correction: linear counting while any register is empty.
  if (raw <= 2.5 * static_cast<double>(m) && zero_registers > 0) {
    return static_cast<double>(m) *
           std::log(static_cast<double>(m) / static_cast<double>(zero_registers));
  }
  return raw;
}

void HyperLogLog::Serialize(std::string* out) const {
  PutVarint64(out, static_cast<uint64_t>(precision_));
  PutVarint64(out, IsSparse() ? 0 : 1);
  if (IsSparse()) {
    PutVarint64(out, sparse_.size());
    uint64_t prev = 0;
    for (const uint64_t hash : sparse_) {
      PutVarint64(out, hash - prev);  // Delta coding (sorted).
      prev = hash;
    }
  } else {
    out->append(reinterpret_cast<const char*>(dense_.data()), dense_.size());
  }
}

Status HyperLogLog::Deserialize(std::string_view* input) {
  uint64_t precision = 0;
  uint64_t mode = 0;
  POL_RETURN_IF_ERROR(GetVarint64(input, &precision));
  if (precision < 4 || precision > 16) {
    return Status::Corruption("bad HyperLogLog precision");
  }
  POL_RETURN_IF_ERROR(GetVarint64(input, &mode));
  *this = HyperLogLog(static_cast<int>(precision));
  if (mode == 0) {
    uint64_t n = 0;
    POL_RETURN_IF_ERROR(GetVarint64(input, &n));
    if (n > kSparseLimit) return Status::Corruption("sparse set too large");
    sparse_.reserve(n);
    uint64_t prev = 0;
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t delta = 0;
      POL_RETURN_IF_ERROR(GetVarint64(input, &delta));
      if (i > 0 && delta == 0) return Status::Corruption("duplicate hash");
      prev += delta;
      sparse_.push_back(prev);
    }
  } else {
    const size_t m = size_t{1} << precision;
    if (input->size() < m) return Status::Corruption("truncated registers");
    dense_.assign(input->begin(), input->begin() + static_cast<long>(m));
    input->remove_prefix(m);
    for (const uint8_t reg : dense_) {
      if (reg > 64) return Status::Corruption("bad register value");
    }
  }
  return Status::OK();
}

}  // namespace pol::stats
