#ifndef POL_STATS_CIRCULAR_H_
#define POL_STATS_CIRCULAR_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

// Circular (directional) mean for course and heading.
//
// Angles cannot be averaged arithmetically (359 deg and 1 deg average to
// 180 deg instead of 0), so the paper's course/heading "mean" (marked X*
// in Table 3) is the direction of the vector sum of unit headings. The
// resultant length in [0, 1] doubles as a concentration measure: ~1 for
// a traffic lane with one direction, ~0 for a roundabout or anchorage.

namespace pol::stats {

class CircularMean {
 public:
  CircularMean() = default;

  // Adds an angle in degrees (any range; normalized internally).
  void Add(double degrees);
  void Merge(const CircularMean& other);

  uint64_t count() const { return count_; }

  // Mean direction in [0, 360); 0 when empty or fully balanced.
  double MeanDeg() const;

  // Mean resultant length in [0, 1]; 0 when empty.
  double ResultantLength() const;

  // Circular variance = 1 - resultant length, in [0, 1].
  double CircularVariance() const { return 1.0 - ResultantLength(); }

  void Serialize(std::string* out) const;
  Status Deserialize(std::string_view* input);

 private:
  uint64_t count_ = 0;
  double sum_sin_ = 0.0;
  double sum_cos_ = 0.0;
};

}  // namespace pol::stats

#endif  // POL_STATS_CIRCULAR_H_
