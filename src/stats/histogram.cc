#include "stats/histogram.h"

#include <cmath>
#include <string>
#include <string_view>

#include "common/check.h"
#include "common/varint.h"

namespace pol::stats {

Histogram::Histogram(double lo, double hi, int num_bins, bool wrap)
    : lo_(lo), hi_(hi), width_((hi - lo) / num_bins), wrap_(wrap) {
  POL_CHECK(num_bins >= 1 && hi > lo) << "bad histogram configuration";
  counts_.assign(static_cast<size_t>(num_bins), 0);
}

int Histogram::BinOf(double value) const {
  if (wrap_) {
    const double span = hi_ - lo_;
    double v = std::fmod(value - lo_, span);
    if (v < 0.0) v += span;
    int bin = static_cast<int>(v / width_);
    if (bin >= num_bins()) bin = num_bins() - 1;  // Guard v == span-eps.
    return bin;
  }
  if (value < lo_) return 0;
  if (value >= hi_) return num_bins() - 1;
  int bin = static_cast<int>((value - lo_) / width_);
  if (bin >= num_bins()) bin = num_bins() - 1;
  return bin;
}

void Histogram::Add(double value) {
  ++counts_[static_cast<size_t>(BinOf(value))];
  ++total_;
}

Status Histogram::Merge(const Histogram& other) {
  if (other.num_bins() != num_bins() || other.lo_ != lo_ || other.hi_ != hi_ ||
      other.wrap_ != wrap_) {
    return Status::FailedPrecondition("histogram configurations differ");
  }
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  return Status::OK();
}

int Histogram::ModeBin() const {
  if (total_ == 0) return -1;
  int best = 0;
  for (int i = 1; i < num_bins(); ++i) {
    if (counts_[static_cast<size_t>(i)] > counts_[static_cast<size_t>(best)]) {
      best = i;
    }
  }
  return best;
}

double Histogram::Fraction(int bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[static_cast<size_t>(bin)]) /
         static_cast<double>(total_);
}

void Histogram::Serialize(std::string* out) const {
  PutDouble(out, lo_);
  PutDouble(out, hi_);
  PutVarint64(out, static_cast<uint64_t>(num_bins()));
  PutVarint64(out, wrap_ ? 1 : 0);
  for (const uint64_t c : counts_) PutVarint64(out, c);
}

Status Histogram::Deserialize(std::string_view* input) {
  double lo = 0, hi = 0;
  uint64_t bins = 0, wrap = 0;
  POL_RETURN_IF_ERROR(GetDouble(input, &lo));
  POL_RETURN_IF_ERROR(GetDouble(input, &hi));
  POL_RETURN_IF_ERROR(GetVarint64(input, &bins));
  POL_RETURN_IF_ERROR(GetVarint64(input, &wrap));
  if (bins == 0 || bins > 100000 || !(hi > lo)) {
    return Status::Corruption("bad histogram header");
  }
  *this = Histogram(lo, hi, static_cast<int>(bins), wrap != 0);
  total_ = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    POL_RETURN_IF_ERROR(GetVarint64(input, &counts_[i]));
    total_ += counts_[i];
  }
  return Status::OK();
}

}  // namespace pol::stats
