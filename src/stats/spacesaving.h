#ifndef POL_STATS_SPACESAVING_H_
#define POL_STATS_SPACESAVING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

// Top-N heavy hitters (SpaceSaving, Metwally et al.) — the "Top-N"
// statistic of Table 3: most frequent origin ports, destination ports
// and cell-to-cell transitions per cell.
//
// The sketch keeps at most `capacity` keyed counters. Any key whose true
// frequency exceeds total/capacity is guaranteed to be present; reported
// counts overestimate the truth by at most the counter's `error` field.
// Merging unions the counters and trims back to capacity, which keeps
// the heavy-hitter guarantee when capacity is a few times the queried N.

namespace pol::stats {

class SpaceSaving {
 public:
  struct Entry {
    uint64_t key = 0;
    uint64_t count = 0;  // Upper bound on the true frequency.
    uint64_t error = 0;  // count - error is a lower bound.
  };

  // `capacity` >= 1; use ~4x the largest N you intend to query.
  explicit SpaceSaving(size_t capacity = 32);

  void Add(uint64_t key, uint64_t increment = 1);
  void Merge(const SpaceSaving& other);

  // The top `n` entries by count (descending; ties broken by key). The
  // result has min(n, stored entries) elements.
  std::vector<Entry> TopN(size_t n) const;

  // Count upper bound for a key; 0 when not tracked.
  uint64_t CountOf(uint64_t key) const;

  // All tracked keys in deterministic (count desc, key asc) order.
  std::vector<Entry> Entries() const { return TopN(capacity_); }

  uint64_t total() const { return total_; }
  size_t capacity() const { return capacity_; }
  size_t size() const { return entries_.size(); }

  void Serialize(std::string* out) const;
  Status Deserialize(std::string_view* input);

 private:
  // Index of the minimum-count entry.
  size_t MinIndex() const;

  size_t capacity_;
  uint64_t total_ = 0;  // Total increments observed.
  std::vector<Entry> entries_;  // Unordered; linear scans (capacity is small).
};

}  // namespace pol::stats

#endif  // POL_STATS_SPACESAVING_H_
