#ifndef POL_STATS_HYPERLOGLOG_H_
#define POL_STATS_HYPERLOGLOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

// Distinct counting — the "Dist" statistic of Table 3 (distinct ships
// and trips per cell).
//
// Two-mode sketch: small cardinalities are kept as an exact sorted set
// of 64-bit hashes (most grid cells see tens to hundreds of vessels, so
// this stays exact and tiny); past a threshold the set is folded into
// dense HyperLogLog registers (Flajolet et al., with linear-counting
// small-range correction). Both modes merge with each other.

namespace pol::stats {

class HyperLogLog {
 public:
  // `precision` in [4, 16]: 2^precision registers once dense; the
  // standard error in dense mode is ~1.04 / sqrt(2^precision).
  explicit HyperLogLog(int precision = 12);

  // Adds a key (already-unique identifier such as an MMSI or trip id).
  void Add(uint64_t key);

  void Merge(const HyperLogLog& other);

  // Estimated number of distinct keys (exact while in sparse mode).
  double Estimate() const;

  // True while the sketch still stores the exact hash set.
  bool IsSparse() const { return dense_.empty(); }

  int precision() const { return precision_; }

  void Serialize(std::string* out) const;
  Status Deserialize(std::string_view* input);

 private:
  // Number of exact hashes kept before switching to dense registers.
  static constexpr size_t kSparseLimit = 256;

  void InsertHash(uint64_t hash);
  void Densify();
  void DenseAdd(uint64_t hash);

  int precision_;
  std::vector<uint64_t> sparse_;  // Sorted unique hashes (sparse mode).
  std::vector<uint8_t> dense_;    // 2^precision registers (dense mode).
};

}  // namespace pol::stats

#endif  // POL_STATS_HYPERLOGLOG_H_
