#include "stats/spacesaving.h"

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "common/logging.h"
#include "common/varint.h"

namespace pol::stats {
namespace {

bool OrderByCountDesc(const SpaceSaving::Entry& a,
                      const SpaceSaving::Entry& b) {
  if (a.count != b.count) return a.count > b.count;
  return a.key < b.key;
}

}  // namespace

SpaceSaving::SpaceSaving(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {
  // No eager reservation (see TDigest): most cells track few keys.
}

void SpaceSaving::Add(uint64_t key, uint64_t increment) {
  if (increment == 0) return;
  total_ += increment;
  for (Entry& e : entries_) {
    if (e.key == key) {
      e.count += increment;
      return;
    }
  }
  if (entries_.size() < capacity_) {
    entries_.push_back({key, increment, 0});
    return;
  }
  // Evict the minimum: the newcomer inherits its count as error bound.
  Entry& victim = entries_[MinIndex()];
  const uint64_t inherited = victim.count;
  victim = Entry{key, inherited + increment, inherited};
}

size_t SpaceSaving::MinIndex() const {
  size_t best = 0;
  for (size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].count < entries_[best].count ||
        (entries_[i].count == entries_[best].count &&
         entries_[i].key > entries_[best].key)) {
      best = i;
    }
  }
  return best;
}

void SpaceSaving::Merge(const SpaceSaving& other) {
  total_ += other.total_;
  // Union with count/error sums for common keys.
  std::vector<Entry> combined = entries_;
  for (const Entry& oe : other.entries_) {
    bool found = false;
    for (Entry& e : combined) {
      if (e.key == oe.key) {
        e.count += oe.count;
        e.error += oe.error;
        found = true;
        break;
      }
    }
    if (!found) combined.push_back(oe);
  }
  if (combined.size() > capacity_) {
    std::sort(combined.begin(), combined.end(), OrderByCountDesc);
    combined.resize(capacity_);
  }
  entries_ = std::move(combined);
}

std::vector<SpaceSaving::Entry> SpaceSaving::TopN(size_t n) const {
  std::vector<Entry> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(), OrderByCountDesc);
  if (sorted.size() > n) sorted.resize(n);
  return sorted;
}

uint64_t SpaceSaving::CountOf(uint64_t key) const {
  for (const Entry& e : entries_) {
    if (e.key == key) return e.count;
  }
  return 0;
}

void SpaceSaving::Serialize(std::string* out) const {
  PutVarint64(out, capacity_);
  PutVarint64(out, total_);
  PutVarint64(out, entries_.size());
  // Deterministic order so serialization is canonical.
  for (const Entry& e : TopN(entries_.size())) {
    PutVarint64(out, e.key);
    PutVarint64(out, e.count);
    PutVarint64(out, e.error);
  }
}

Status SpaceSaving::Deserialize(std::string_view* input) {
  uint64_t capacity = 0;
  uint64_t total = 0;
  uint64_t n = 0;
  POL_RETURN_IF_ERROR(GetVarint64(input, &capacity));
  POL_RETURN_IF_ERROR(GetVarint64(input, &total));
  POL_RETURN_IF_ERROR(GetVarint64(input, &n));
  if (capacity == 0 || capacity > 1000000 || n > capacity) {
    return Status::Corruption("bad SpaceSaving header");
  }
  *this = SpaceSaving(capacity);
  total_ = total;
  entries_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Entry e{};
    POL_RETURN_IF_ERROR(GetVarint64(input, &e.key));
    POL_RETURN_IF_ERROR(GetVarint64(input, &e.count));
    POL_RETURN_IF_ERROR(GetVarint64(input, &e.error));
    if (e.error > e.count) return Status::Corruption("error exceeds count");
    entries_.push_back(e);
  }
  return Status::OK();
}

}  // namespace pol::stats
