#include "stats/welford.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <string_view>

#include "common/varint.h"

namespace pol::stats {

void Welford::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void Welford::Merge(const Welford& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel combination.
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * static_cast<double>(other.count_) / total;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double Welford::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double Welford::StdDev() const { return std::sqrt(Variance()); }

void Welford::Serialize(std::string* out) const {
  PutVarint64(out, count_);
  if (count_ == 0) return;
  PutDouble(out, mean_);
  PutDouble(out, m2_);
  PutDouble(out, min_);
  PutDouble(out, max_);
}

Status Welford::Deserialize(std::string_view* input) {
  *this = Welford();
  POL_RETURN_IF_ERROR(GetVarint64(input, &count_));
  if (count_ == 0) return Status::OK();
  POL_RETURN_IF_ERROR(GetDouble(input, &mean_));
  POL_RETURN_IF_ERROR(GetDouble(input, &m2_));
  POL_RETURN_IF_ERROR(GetDouble(input, &min_));
  POL_RETURN_IF_ERROR(GetDouble(input, &max_));
  return Status::OK();
}

}  // namespace pol::stats
