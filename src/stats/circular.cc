#include "stats/circular.h"

#include <cmath>
#include <string>
#include <string_view>

#include "common/varint.h"

namespace pol::stats {
namespace {
constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
}  // namespace

void CircularMean::Add(double degrees) {
  const double rad = degrees * kDegToRad;
  sum_sin_ += std::sin(rad);
  sum_cos_ += std::cos(rad);
  ++count_;
}

void CircularMean::Merge(const CircularMean& other) {
  sum_sin_ += other.sum_sin_;
  sum_cos_ += other.sum_cos_;
  count_ += other.count_;
}

double CircularMean::MeanDeg() const {
  if (count_ == 0) return 0.0;
  // NOLINTNEXTLINE(pollint:float-compare): exact-zero means no samples yet.
  if (sum_sin_ == 0.0 && sum_cos_ == 0.0) return 0.0;
  double deg = std::atan2(sum_sin_, sum_cos_) / kDegToRad;
  if (deg < 0.0) deg += 360.0;
  if (deg >= 360.0) deg -= 360.0;
  return deg;
}

double CircularMean::ResultantLength() const {
  if (count_ == 0) return 0.0;
  return std::sqrt(sum_sin_ * sum_sin_ + sum_cos_ * sum_cos_) /
         static_cast<double>(count_);
}

void CircularMean::Serialize(std::string* out) const {
  PutVarint64(out, count_);
  if (count_ == 0) return;
  PutDouble(out, sum_sin_);
  PutDouble(out, sum_cos_);
}

Status CircularMean::Deserialize(std::string_view* input) {
  *this = CircularMean();
  POL_RETURN_IF_ERROR(GetVarint64(input, &count_));
  if (count_ == 0) return Status::OK();
  POL_RETURN_IF_ERROR(GetDouble(input, &sum_sin_));
  POL_RETURN_IF_ERROR(GetDouble(input, &sum_cos_));
  return Status::OK();
}

}  // namespace pol::stats
