#include "stats/p2_quantile.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <string_view>

#include "common/varint.h"

namespace pol::stats {

P2Quantile::P2Quantile(double q) : q_(std::clamp(q, 0.001, 0.999)) {
  increments_[0] = 0.0;
  increments_[1] = q_ / 2.0;
  increments_[2] = q_;
  increments_[3] = (1.0 + q_) / 2.0;
  increments_[4] = 1.0;
}

void P2Quantile::Add(double value) {
  if (count_ < 5) {
    heights_[count_] = value;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_, heights_ + 5);
      for (int i = 0; i < 5; ++i) {
        positions_[i] = i + 1;
        desired_[i] = 1.0 + 4.0 * increments_[i];
      }
    }
    return;
  }

  // Find the cell containing the value; stretch the extremes if needed.
  int cell;
  if (value < heights_[0]) {
    heights_[0] = value;
    cell = 0;
  } else if (value >= heights_[4]) {
    heights_[4] = value;
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && value >= heights_[cell + 1]) ++cell;
  }
  for (int i = cell + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];
  ++count_;

  // Adjust the three interior markers.
  for (int i = 1; i <= 3; ++i) {
    const double gap = desired_[i] - positions_[i];
    if ((gap >= 1.0 && positions_[i + 1] - positions_[i] > 1.0) ||
        (gap <= -1.0 && positions_[i - 1] - positions_[i] < -1.0)) {
      const double direction = gap >= 1.0 ? 1.0 : -1.0;
      const double candidate = Parabolic(i, direction);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        heights_[i] = Linear(i, direction);
      }
      positions_[i] += direction;
    }
  }
}

double P2Quantile::Parabolic(int i, double d) const {
  const double np = positions_[i + 1];
  const double nm = positions_[i - 1];
  const double n = positions_[i];
  return heights_[i] +
         d / (np - nm) *
             ((n - nm + d) * (heights_[i + 1] - heights_[i]) / (np - n) +
              (np - n - d) * (heights_[i] - heights_[i - 1]) / (n - nm));
}

double P2Quantile::Linear(int i, double d) const {
  const int j = i + static_cast<int>(d);
  return heights_[i] + d * (heights_[j] - heights_[i]) /
                           (positions_[j] - positions_[i]);
}

double P2Quantile::Value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact small-sample quantile (nearest rank on the sorted prefix).
    double sorted[5];
    std::copy(heights_, heights_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    const size_t rank = static_cast<size_t>(
        q_ * static_cast<double>(count_ - 1) + 0.5);
    return sorted[std::min<size_t>(rank, count_ - 1)];
  }
  return heights_[2];
}

void P2Quantile::Serialize(std::string* out) const {
  PutDouble(out, q_);
  PutVarint64(out, count_);
  const size_t markers = count_ < 5 ? count_ : 5;
  for (size_t i = 0; i < markers; ++i) PutDouble(out, heights_[i]);
  if (count_ >= 5) {
    for (int i = 0; i < 5; ++i) PutDouble(out, positions_[i]);
    for (int i = 0; i < 5; ++i) PutDouble(out, desired_[i]);
  }
}

Status P2Quantile::Deserialize(std::string_view* input) {
  double q = 0;
  POL_RETURN_IF_ERROR(GetDouble(input, &q));
  if (!(q > 0.0 && q < 1.0)) return Status::Corruption("bad P2 quantile");
  *this = P2Quantile(q);
  POL_RETURN_IF_ERROR(GetVarint64(input, &count_));
  const size_t markers = count_ < 5 ? count_ : 5;
  for (size_t i = 0; i < markers; ++i) {
    POL_RETURN_IF_ERROR(GetDouble(input, &heights_[i]));
  }
  if (count_ >= 5) {
    for (int i = 0; i < 5; ++i) {
      POL_RETURN_IF_ERROR(GetDouble(input, &positions_[i]));
    }
    for (int i = 0; i < 5; ++i) {
      POL_RETURN_IF_ERROR(GetDouble(input, &desired_[i]));
    }
  }
  return Status::OK();
}

}  // namespace pol::stats
