#ifndef POL_STATS_TDIGEST_H_
#define POL_STATS_TDIGEST_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

// Merging t-digest (Dunning & Ertl) — the approximate-percentile sketch
// behind the Perc. column of Table 3 (10th / 50th / 90th percentiles of
// speed, ETO and ATA per cell). Mergeable, bounded memory (~compression
// centroids), most accurate in the tails.

namespace pol::stats {

class TDigest {
 public:
  // `compression` bounds the number of centroids (~2x compression) and
  // controls accuracy; 100 gives roughly 1% worst-case quantile error.
  explicit TDigest(double compression = 100.0);

  void Add(double value, uint64_t weight = 1);
  void Merge(const TDigest& other);

  uint64_t count() const { return total_weight_ + buffered_weight_; }
  double min() const;
  double max() const;

  // Approximate value at quantile q in [0, 1]. Returns 0 when empty.
  double Quantile(double q) const;

  // Approximate fraction of observations <= value. Returns 0 when empty.
  double Rank(double value) const;

  void Serialize(std::string* out) const;
  Status Deserialize(std::string_view* input);

  // Number of stored centroids after flushing (for tests/inspection).
  size_t CentroidCount() const;

 private:
  struct Centroid {
    double mean;
    uint64_t weight;
  };

  // Folds buffered points into the centroid list. Logically const:
  // flushing changes the representation, not the distribution.
  void Flush() const;

  double compression_;
  mutable std::vector<Centroid> centroids_;  // Sorted by mean.
  mutable std::vector<Centroid> buffer_;
  mutable uint64_t total_weight_ = 0;     // Weight in centroids_.
  mutable uint64_t buffered_weight_ = 0;  // Weight in buffer_.
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace pol::stats

#endif  // POL_STATS_TDIGEST_H_
