#ifndef POL_STATS_P2_QUANTILE_H_
#define POL_STATS_P2_QUANTILE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

// P-square (P2) single-quantile estimator (Jain & Chlamtac 1985): five
// markers, O(1) memory, no buffers.
//
// This is the DESIGN.md ablation partner of the t-digest: the inventory
// uses the t-digest because the reduce phase needs a MERGEABLE sketch —
// P2 is cheaper per update and per byte but two P2 states cannot be
// combined, so it only works for single-pass, single-partition
// aggregation. The ablation bench quantifies the cost difference the
// mergeability requirement buys.

namespace pol::stats {

class P2Quantile {
 public:
  // Estimates the q-th quantile, q in (0, 1).
  explicit P2Quantile(double q = 0.5);

  void Add(double value);

  uint64_t count() const { return count_; }

  // Current estimate; exact while fewer than five observations.
  double Value() const;

  void Serialize(std::string* out) const;
  Status Deserialize(std::string_view* input);

 private:
  double Parabolic(int i, double direction) const;
  double Linear(int i, double direction) const;

  double q_;
  uint64_t count_ = 0;
  // Marker heights, positions and desired positions (five each).
  double heights_[5] = {};
  double positions_[5] = {};
  double desired_[5] = {};
  double increments_[5] = {};
};

}  // namespace pol::stats

#endif  // POL_STATS_P2_QUANTILE_H_
