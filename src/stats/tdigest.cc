#include "stats/tdigest.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <string_view>
#include <vector>

#include "common/logging.h"
#include "common/varint.h"

namespace pol::stats {
namespace {

constexpr double kPi = 3.14159265358979323846;

// The k1 scale function: k(q) = (compression / 2pi) * asin(2q - 1).
// Centroids may only merge while their k-span stays below 1, which
// concentrates resolution in the tails.
double ScaleK(double q, double compression) {
  return compression / (2.0 * kPi) * std::asin(2.0 * std::clamp(q, 0.0, 1.0) - 1.0);
}

}  // namespace

TDigest::TDigest(double compression)
    : compression_(std::max(20.0, compression)) {
  // No eager reservation: inventories hold millions of mostly-tiny
  // digests, so the buffer grows on demand.
}

void TDigest::Add(double value, uint64_t weight) {
  if (weight == 0 || std::isnan(value)) return;
  if (count() == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  buffer_.push_back({value, weight});
  buffered_weight_ += weight;
  if (buffer_.size() >= static_cast<size_t>(compression_) * 4) Flush();
}

void TDigest::Merge(const TDigest& other) {
  if (other.count() == 0) return;
  if (count() == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (const Centroid& c : other.centroids_) {
    buffer_.push_back(c);
    buffered_weight_ += c.weight;
  }
  for (const Centroid& c : other.buffer_) {
    buffer_.push_back(c);
    buffered_weight_ += c.weight;
  }
  Flush();
}

double TDigest::min() const { return count() == 0 ? 0.0 : min_; }
double TDigest::max() const { return count() == 0 ? 0.0 : max_; }

void TDigest::Flush() const {
  if (buffer_.empty()) return;
  std::vector<Centroid> all;
  all.reserve(centroids_.size() + buffer_.size());
  all.insert(all.end(), centroids_.begin(), centroids_.end());
  all.insert(all.end(), buffer_.begin(), buffer_.end());
  std::sort(all.begin(), all.end(), [](const Centroid& a, const Centroid& b) {
    return a.mean < b.mean;
  });
  buffer_.clear();
  total_weight_ += buffered_weight_;
  buffered_weight_ = 0;

  const double total = static_cast<double>(total_weight_);
  centroids_.clear();
  Centroid current = all[0];
  double weight_so_far = 0.0;
  double k_lower = ScaleK(0.0, compression_);
  for (size_t i = 1; i < all.size(); ++i) {
    const double proposed =
        static_cast<double>(current.weight + all[i].weight);
    const double q_upper = (weight_so_far + proposed) / total;
    if (ScaleK(q_upper, compression_) - k_lower <= 1.0) {
      // Merge into the current centroid (weighted mean).
      const double w_cur = static_cast<double>(current.weight);
      const double w_new = static_cast<double>(all[i].weight);
      current.mean =
          (current.mean * w_cur + all[i].mean * w_new) / (w_cur + w_new);
      current.weight += all[i].weight;
    } else {
      centroids_.push_back(current);
      weight_so_far += static_cast<double>(current.weight);
      k_lower = ScaleK(weight_so_far / total, compression_);
      current = all[i];
    }
  }
  centroids_.push_back(current);
}

size_t TDigest::CentroidCount() const {
  Flush();
  return centroids_.size();
}

double TDigest::Quantile(double q) const {
  if (count() == 0) return 0.0;
  Flush();
  q = std::clamp(q, 0.0, 1.0);
  const double total = static_cast<double>(total_weight_);
  const double target = q * total;

  // Cumulative weight at each centroid's midpoint; linear interpolation
  // between midpoints, and between min/max and the extreme centroids.
  double cumulative = 0.0;
  double prev_midpoint = 0.0;
  double prev_mean = min_;
  for (size_t i = 0; i < centroids_.size(); ++i) {
    const double w = static_cast<double>(centroids_[i].weight);
    const double midpoint = cumulative + w / 2.0;
    if (target < midpoint) {
      const double span = midpoint - prev_midpoint;
      if (span <= 0.0) return centroids_[i].mean;
      const double t = (target - prev_midpoint) / span;
      return prev_mean + t * (centroids_[i].mean - prev_mean);
    }
    prev_midpoint = midpoint;
    prev_mean = centroids_[i].mean;
    cumulative += w;
  }
  // Beyond the last midpoint: interpolate toward the maximum.
  const double span = total - prev_midpoint;
  if (span <= 0.0) return max_;
  const double t = (target - prev_midpoint) / span;
  return prev_mean + std::clamp(t, 0.0, 1.0) * (max_ - prev_mean);
}

double TDigest::Rank(double value) const {
  if (count() == 0) return 0.0;
  Flush();
  if (value <= min_) return 0.0;
  if (value >= max_) return 1.0;
  const double total = static_cast<double>(total_weight_);
  double cumulative = 0.0;
  double prev_midpoint = 0.0;
  double prev_mean = min_;
  for (size_t i = 0; i < centroids_.size(); ++i) {
    const double w = static_cast<double>(centroids_[i].weight);
    const double midpoint = cumulative + w / 2.0;
    if (value < centroids_[i].mean) {
      const double span = centroids_[i].mean - prev_mean;
      const double t = span <= 0.0 ? 0.0 : (value - prev_mean) / span;
      return (prev_midpoint + t * (midpoint - prev_midpoint)) / total;
    }
    prev_midpoint = midpoint;
    prev_mean = centroids_[i].mean;
    cumulative += w;
  }
  const double span = max_ - prev_mean;
  const double t = span <= 0.0 ? 1.0 : (value - prev_mean) / span;
  return (prev_midpoint + t * (total - prev_midpoint)) / total;
}

void TDigest::Serialize(std::string* out) const {
  Flush();
  PutDouble(out, compression_);
  PutVarint64(out, static_cast<uint64_t>(centroids_.size()));
  if (centroids_.empty()) return;
  PutDouble(out, min_);
  PutDouble(out, max_);
  for (const Centroid& c : centroids_) {
    PutDouble(out, c.mean);
    PutVarint64(out, c.weight);
  }
}

Status TDigest::Deserialize(std::string_view* input) {
  double compression = 0.0;
  POL_RETURN_IF_ERROR(GetDouble(input, &compression));
  if (!(compression >= 20.0 && compression <= 1e6)) {
    return Status::Corruption("bad t-digest compression");
  }
  uint64_t n = 0;
  POL_RETURN_IF_ERROR(GetVarint64(input, &n));
  if (n > 1000000) return Status::Corruption("bad t-digest size");
  *this = TDigest(compression);
  if (n == 0) return Status::OK();
  POL_RETURN_IF_ERROR(GetDouble(input, &min_));
  POL_RETURN_IF_ERROR(GetDouble(input, &max_));
  centroids_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Centroid c{};
    POL_RETURN_IF_ERROR(GetDouble(input, &c.mean));
    POL_RETURN_IF_ERROR(GetVarint64(input, &c.weight));
    if (c.weight == 0) return Status::Corruption("zero-weight centroid");
    centroids_.push_back(c);
    total_weight_ += c.weight;
  }
  return Status::OK();
}

}  // namespace pol::stats
