#ifndef POL_USECASES_LANE_ANALYSIS_H_
#define POL_USECASES_LANE_ANALYSIS_H_

#include <map>
#include <vector>

#include "core/inventory_query.h"

// Knowledge extraction over the inventory (paper section 4.1.1): the
// Figure 4 panels are read by a human; this module extracts the same
// structures programmatically — which cells are directional lanes,
// which are bidirectional corridors (traffic separation pairs), which
// are loitering/anchorage areas.

namespace pol::uc {

enum class CellClass {
  kSparse = 0,        // Not enough records for a verdict.
  kLane = 1,          // One dominant direction (high concentration).
  kBidirectional = 2, // Two opposite direction modes (separation schema).
  kLoitering = 3,     // Slow, direction-less traffic (anchorages).
  kMixed = 4,         // Everything else (port basins, junctions).
};

const char* CellClassName(CellClass c);

struct LaneAnalysisConfig {
  uint64_t min_records = 20;
  double lane_concentration = 0.85;   // Resultant length for kLane.
  double loiter_speed_knots = 3.0;
  // Bidirectional: two opposite 30-degree course bins together hold at
  // least this share of records.
  double bidirectional_share = 0.6;
};

struct LaneAnalysisReport {
  std::map<CellClass, uint64_t> cells_per_class;
  uint64_t classified = 0;  // Cells with enough records.
};

class LaneAnalyzer {
 public:
  LaneAnalyzer(const core::InventoryQuery* inventory,
               const LaneAnalysisConfig& config = LaneAnalysisConfig())
      : inventory_(inventory), config_(config) {}

  // Classifies one cell's all-traffic summary.
  CellClass Classify(const core::CellSummary& summary) const;

  // Classifies every (cell) summary of the inventory.
  LaneAnalysisReport AnalyzeAll() const;

  // Cells of a given class (for rendering / downstream filters).
  std::vector<hex::CellIndex> CellsOfClass(CellClass c) const;

 private:
  const core::InventoryQuery* inventory_;
  LaneAnalysisConfig config_;
};

}  // namespace pol::uc

#endif  // POL_USECASES_LANE_ANALYSIS_H_
