#include "usecases/lane_analysis.h"

#include <algorithm>
#include <vector>

namespace pol::uc {

const char* CellClassName(CellClass c) {
  switch (c) {
    case CellClass::kSparse:
      return "sparse";
    case CellClass::kLane:
      return "lane";
    case CellClass::kBidirectional:
      return "bidirectional";
    case CellClass::kLoitering:
      return "loitering";
    case CellClass::kMixed:
      return "mixed";
  }
  return "?";
}

CellClass LaneAnalyzer::Classify(const core::CellSummary& summary) const {
  if (summary.record_count() < config_.min_records ||
      summary.course_mean().count() < config_.min_records / 2) {
    return CellClass::kSparse;
  }
  // Loitering first: slow traffic has meaningless courses.
  if (summary.speed().count() > 0 &&
      summary.speed().Mean() < config_.loiter_speed_knots) {
    return CellClass::kLoitering;
  }
  if (summary.course_mean().ResultantLength() >=
      config_.lane_concentration) {
    return CellClass::kLane;
  }
  // Bidirectional: the dominant course bin plus its opposite bin carry
  // most of the traffic (12 bins of 30 degrees; the opposite is +6).
  const auto& bins = summary.course_bins();
  if (bins.total() > 0) {
    const int mode = bins.ModeBin();
    const int opposite = (mode + 6) % 12;
    const double share = bins.Fraction(mode) + bins.Fraction(opposite);
    if (share >= config_.bidirectional_share &&
        bins.bin_count(opposite) > 0) {
      return CellClass::kBidirectional;
    }
  }
  return CellClass::kMixed;
}

LaneAnalysisReport LaneAnalyzer::AnalyzeAll() const {
  LaneAnalysisReport report;
  inventory_->VisitGroupingSet(
      core::GroupingSet::kCell,
      [this, &report](const core::GroupKey&, const core::CellSummary& summary) {
        const CellClass c = Classify(summary);
        ++report.cells_per_class[c];
        if (c != CellClass::kSparse) ++report.classified;
      });
  return report;
}

std::vector<hex::CellIndex> LaneAnalyzer::CellsOfClass(CellClass c) const {
  std::vector<hex::CellIndex> cells;
  inventory_->VisitGroupingSet(
      core::GroupingSet::kCell,
      [this, c, &cells](const core::GroupKey& key,
                        const core::CellSummary& summary) {
        if (Classify(summary) == c) cells.push_back(key.cell);
      });
  // Deterministic regardless of the backing store's visit order.
  std::sort(cells.begin(), cells.end());
  return cells;
}

}  // namespace pol::uc
