#ifndef POL_USECASES_CONGESTION_H_
#define POL_USECASES_CONGESTION_H_

#include <vector>

#include "core/port_calls.h"
#include "sim/ports.h"

// Port congestion monitoring — the visibility the paper's introduction
// motivates (COVID-era port disruptions, queue build-ups). Derived from
// the reconstructed port-call table plus anchorage dwell detection: for
// each port, how many calls, how long alongside, and how long vessels
// waited at anchor in the approaches before berthing.

namespace pol::uc {

struct PortActivity {
  sim::PortId port = sim::kNoPort;
  uint64_t calls = 0;
  double mean_stay_hours = 0.0;
  double p90_stay_hours = 0.0;
  // Pre-berth anchorage waits (0 when vessels berth directly).
  uint64_t waits = 0;
  double mean_wait_hours = 0.0;
};

struct CongestionConfig {
  // An anchorage wait is a stationary period within this distance of
  // the port, outside its fence, that ends with a berth call there.
  double anchorage_reach_km = 40.0;
  double stop_speed_knots = 1.5;
  int64_t min_wait_s = 2 * 3600;
  // A wait and the following call belong together when the gap is small.
  int64_t link_gap_s = 24 * 3600;
};

// Aggregates port activity from the call table and (for waits) the
// cleaned record stream. `records` must be vessel-partitioned and
// time-sorted; `calls` sorted by (mmsi, arrival) as ExtractPortCalls
// returns them. Results are sorted by call count, busiest first.
std::vector<PortActivity> AnalyzePortActivity(
    const std::vector<core::PortCall>& calls,
    const flow::Dataset<core::PipelineRecord>& records,
    const sim::PortDatabase& ports,
    const CongestionConfig& config = CongestionConfig());

}  // namespace pol::uc

#endif  // POL_USECASES_CONGESTION_H_
