#ifndef POL_USECASES_ANOMALY_H_
#define POL_USECASES_ANOMALY_H_

#include "core/inventory_query.h"
#include "core/records.h"

// Anomaly detection against the model of normalcy (the paper's stated
// motivation: "a model of normalcy that can then be used to identify any
// outliers ... e.g. Covid-19 or Suez Canal"). A live report is scored
// against the historical per-cell behaviour of its market segment.

namespace pol::uc {

struct AnomalyAssessment {
  // The individual signals.
  bool off_lane = false;       // The cell has (almost) no history.
  bool speed_anomaly = false;  // |v - mean| > threshold_sigmas * std.
  bool course_anomaly = false; // Far from the dominant direction of a
                               // strongly-directional lane.
  // Composite score in [0, 3]: number of raised signals.
  int score = 0;
  // Supporting numbers for explanations.
  double speed_z = 0.0;
  double course_deviation_deg = 0.0;
  uint64_t cell_support = 0;
};

struct AnomalyConfig {
  // Cells with fewer records than this are "unvisited" -> off-lane.
  uint64_t min_support = 25;
  double speed_sigmas = 3.0;
  // Course checks apply only where traffic is strongly directional.
  double min_course_concentration = 0.9;
  double course_tolerance_deg = 60.0;
};

class AnomalyDetector {
 public:
  AnomalyDetector(const core::InventoryQuery* inventory,
                  const AnomalyConfig& config = AnomalyConfig())
      : inventory_(inventory), config_(config) {}

  // Scores one observation. Missing kinematic fields skip their checks.
  AnomalyAssessment Assess(const geo::LatLng& position, double sog_knots,
                           double cog_deg,
                           ais::MarketSegment segment) const;

 private:
  const core::InventoryQuery* inventory_;
  AnomalyConfig config_;
};

}  // namespace pol::uc

#endif  // POL_USECASES_ANOMALY_H_
