#include "usecases/anomaly.h"

#include <cmath>

#include "geo/geodesic.h"
#include "hexgrid/hexgrid.h"

namespace pol::uc {

AnomalyAssessment AnomalyDetector::Assess(const geo::LatLng& position,
                                          double sog_knots, double cog_deg,
                                          ais::MarketSegment segment) const {
  AnomalyAssessment assessment;
  const hex::CellIndex cell =
      hex::LatLngToCell(position, inventory_->resolution());
  // Segment-specific baseline when it carries enough history; otherwise
  // the all-traffic summary of the cell.
  const core::CellSummary* summary = inventory_->CellType(cell, segment);
  if (summary == nullptr || summary->record_count() < config_.min_support) {
    summary = inventory_->Cell(cell);
  }
  assessment.cell_support = summary == nullptr ? 0 : summary->record_count();

  if (summary == nullptr || summary->record_count() < config_.min_support) {
    assessment.off_lane = true;
    assessment.score = 1;
    return assessment;  // No reliable kinematic baseline off the lanes.
  }

  if (sog_knots < ais::kSogUnavailable && summary->speed().count() >= 2) {
    const double std_dev = summary->speed().StdDev();
    if (std_dev > 1e-6) {
      assessment.speed_z =
          std::fabs(sog_knots - summary->speed().Mean()) / std_dev;
      if (assessment.speed_z > config_.speed_sigmas) {
        assessment.speed_anomaly = true;
      }
    }
  }

  if (cog_deg < ais::kCogUnavailable &&
      summary->course_mean().count() > 0 &&
      summary->course_mean().ResultantLength() >=
          config_.min_course_concentration) {
    assessment.course_deviation_deg =
        geo::AngularDifferenceDeg(cog_deg, summary->course_mean().MeanDeg());
    if (assessment.course_deviation_deg > config_.course_tolerance_deg) {
      assessment.course_anomaly = true;
    }
  }

  assessment.score = (assessment.off_lane ? 1 : 0) +
                     (assessment.speed_anomaly ? 1 : 0) +
                     (assessment.course_anomaly ? 1 : 0);
  return assessment;
}

}  // namespace pol::uc
