#ifndef POL_USECASES_DESTINATION_H_
#define POL_USECASES_DESTINATION_H_

#include <unordered_map>
#include <vector>

#include "core/inventory_query.h"

// Streaming destination prediction (paper section 4.1.3): for each AIS
// message of a vessel whose destination is undisclosed, query the
// inventory for the Top-N destinations of same-type traffic that sailed
// nearby in the past, and keep a running vote tally; the most probable
// destination is the current leader.

namespace pol::uc {

struct DestinationGuess {
  sim::PortId port = sim::kNoPort;
  double share = 0.0;  // Fraction of total votes.
};

class DestinationPredictor {
 public:
  // `decay` in (0, 1]: per-observation multiplicative decay of older
  // votes. 1.0 accumulates forever; lower values adapt faster when a
  // vessel commits to one corridor.
  DestinationPredictor(const core::InventoryQuery* inventory,
                       double decay = 0.98)
      : inventory_(inventory), decay_(decay) {}

  // Feeds one observed position. Returns true when the cell had history.
  bool Observe(const geo::LatLng& position, ais::MarketSegment segment);

  // Current ranking (best first). Empty before any informative
  // observation.
  std::vector<DestinationGuess> Ranking(size_t n = 3) const;

  // Leader, or kNoPort.
  sim::PortId Predict() const;

  void Reset() { votes_.clear(); }
  uint64_t observations() const { return observations_; }

 private:
  const core::InventoryQuery* inventory_;
  double decay_;
  uint64_t observations_ = 0;
  std::unordered_map<sim::PortId, double> votes_;
};

}  // namespace pol::uc

#endif  // POL_USECASES_DESTINATION_H_
