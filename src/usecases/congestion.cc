#include "usecases/congestion.h"

#include <algorithm>
#include <map>
#include <vector>

#include "common/mutex.h"
#include "geo/geodesic.h"

namespace pol::uc {
namespace {

struct Wait {
  ais::Mmsi mmsi;
  sim::PortId port;
  UnixSeconds start;
  UnixSeconds end;
};

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return values[static_cast<size_t>(q * static_cast<double>(values.size() - 1))];
}

}  // namespace

std::vector<PortActivity> AnalyzePortActivity(
    const std::vector<core::PortCall>& calls,
    const flow::Dataset<core::PipelineRecord>& records,
    const sim::PortDatabase& ports, const CongestionConfig& config) {
  // Detect anchorage waits: stationary runs near (but not in) a port.
  Mutex mutex;
  std::vector<Wait> waits;
  records.pool()->ParallelFor(
      static_cast<size_t>(records.num_partitions()), [&](size_t p) {
        std::vector<Wait> local;
        Wait open{0, sim::kNoPort, 0, 0};
        auto close = [&local, &config](Wait* w) {
          if (w->port != sim::kNoPort &&
              w->end - w->start >= config.min_wait_s) {
            local.push_back(*w);
          }
          w->port = sim::kNoPort;
        };
        for (const core::PipelineRecord& record :
             records.partition(static_cast<int>(p))) {
          if (open.port != sim::kNoPort && record.mmsi != open.mmsi) {
            close(&open);
          }
          const bool stationary =
              record.sog_knots < config.stop_speed_knots ||
              record.nav_status == ais::NavStatus::kAtAnchor;
          sim::PortId near_port = sim::kNoPort;
          if (stationary) {
            const sim::Port* nearest =
                ports.Nearest({record.lat_deg, record.lng_deg});
            if (nearest != nullptr) {
              const double km = geo::HaversineKm(
                  {record.lat_deg, record.lng_deg}, nearest->position);
              // Outside the fence but within anchorage reach.
              if (km > nearest->geofence_radius_km &&
                  km <= config.anchorage_reach_km) {
                near_port = nearest->id;
              }
            }
          }
          if (near_port == sim::kNoPort) {
            close(&open);
            continue;
          }
          if (open.port == near_port && open.mmsi == record.mmsi) {
            open.end = record.timestamp;
          } else {
            close(&open);
            open = {record.mmsi, near_port, record.timestamp,
                    record.timestamp};
          }
        }
        close(&open);
        const MutexLock lock(mutex);
        waits.insert(waits.end(), local.begin(), local.end());
      });

  // Link waits to the following berth call of the same vessel and port.
  std::map<sim::PortId, std::vector<double>> wait_hours;
  for (const Wait& wait : waits) {
    for (const core::PortCall& call : calls) {
      if (call.mmsi != wait.mmsi || call.port != wait.port) continue;
      if (call.arrival >= wait.end &&
          call.arrival - wait.end <= config.link_gap_s) {
        wait_hours[wait.port].push_back(
            static_cast<double>(wait.end - wait.start) / 3600.0);
        break;
      }
    }
  }

  // Per-port aggregates.
  std::map<sim::PortId, std::vector<double>> stay_hours;
  for (const core::PortCall& call : calls) {
    stay_hours[call.port].push_back(
        static_cast<double>(call.DurationSeconds()) / 3600.0);
  }
  std::vector<PortActivity> activity;
  for (const auto& [port, stays] : stay_hours) {
    PortActivity entry;
    entry.port = port;
    entry.calls = stays.size();
    double sum = 0;
    for (const double h : stays) sum += h;
    entry.mean_stay_hours = sum / static_cast<double>(stays.size());
    entry.p90_stay_hours = Percentile(stays, 0.9);
    const auto it = wait_hours.find(port);
    if (it != wait_hours.end()) {
      entry.waits = it->second.size();
      double wait_sum = 0;
      for (const double h : it->second) wait_sum += h;
      entry.mean_wait_hours =
          wait_sum / static_cast<double>(it->second.size());
    }
    activity.push_back(entry);
  }
  std::sort(activity.begin(), activity.end(),
            [](const PortActivity& a, const PortActivity& b) {
              if (a.calls != b.calls) return a.calls > b.calls;
              return a.port < b.port;
            });
  return activity;
}

}  // namespace pol::uc
