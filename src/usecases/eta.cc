#include "usecases/eta.h"

#include "hexgrid/hexgrid.h"

namespace pol::uc {
namespace {

EtaEstimate FromSummary(const core::CellSummary& summary, int grouping_set) {
  EtaEstimate estimate;
  estimate.seconds = summary.ata().Mean();
  estimate.p10_seconds = summary.ata_percentiles().Quantile(0.1);
  estimate.p90_seconds = summary.ata_percentiles().Quantile(0.9);
  estimate.support = summary.ata().count();
  estimate.grouping_set = grouping_set;
  return estimate;
}

}  // namespace

Result<EtaEstimate> EtaEstimator::Estimate(const geo::LatLng& position,
                                           ais::MarketSegment segment,
                                           sim::PortId origin,
                                           sim::PortId destination) const {
  const hex::CellIndex cell =
      hex::LatLngToCell(position, inventory_->resolution());
  if (cell == hex::kInvalidCell) {
    return Status::InvalidArgument("bad position");
  }
  // Most-specific-first fallback chain.
  if (origin != sim::kNoPort && destination != sim::kNoPort) {
    const core::CellSummary* summary =
        inventory_->CellRouteType(cell, origin, destination, segment);
    if (summary != nullptr && summary->ata().count() > 0) {
      return FromSummary(*summary, 2);
    }
  }
  if (const core::CellSummary* summary = inventory_->CellType(cell, segment);
      summary != nullptr && summary->ata().count() > 0) {
    return FromSummary(*summary, 1);
  }
  if (const core::CellSummary* summary = inventory_->Cell(cell);
      summary != nullptr && summary->ata().count() > 0) {
    return FromSummary(*summary, 0);
  }
  return Status::NotFound("no historical arrivals for this cell");
}

}  // namespace pol::uc
