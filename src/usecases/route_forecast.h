#ifndef POL_USECASES_ROUTE_FORECAST_H_
#define POL_USECASES_ROUTE_FORECAST_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/inventory_query.h"

// Route forecasting (paper section 4.1.3, Figure 2.f): for a vessel on a
// declared (origin, destination) voyage, the inventory's cells for that
// route key form a graph — vertices are cell indices, edges the recorded
// cell-to-cell transitions — and the forecast route is an A* shortest
// path from the vessel's current cell toward the destination.

namespace pol::uc {

struct RouteForecast {
  // Cell path from the current cell to the final cell near the
  // destination port.
  std::vector<hex::CellIndex> cells;
  double distance_km = 0.0;
  // Vertices/edges of the transition graph that backed the forecast.
  size_t graph_cells = 0;
  size_t graph_edges = 0;
};

class RouteForecaster {
 public:
  explicit RouteForecaster(const core::InventoryQuery* inventory,
                           const sim::PortDatabase* ports)
      : inventory_(inventory), ports_(ports) {}

  // Forecasts the remaining route of a vessel at `position` sailing
  // (origin -> destination) as `segment` traffic. Fails when the route
  // key has no cells, the current position is outside the historical
  // corridor, or the graph does not connect to the destination area.
  Result<RouteForecast> Forecast(const geo::LatLng& position,
                                 sim::PortId origin, sim::PortId destination,
                                 ais::MarketSegment segment) const;

 private:
  const core::InventoryQuery* inventory_;
  const sim::PortDatabase* ports_;
};

}  // namespace pol::uc

#endif  // POL_USECASES_ROUTE_FORECAST_H_
