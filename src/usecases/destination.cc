#include "usecases/destination.h"

#include <algorithm>
#include <vector>

#include "hexgrid/hexgrid.h"

namespace pol::uc {

bool DestinationPredictor::Observe(const geo::LatLng& position,
                                   ais::MarketSegment segment) {
  ++observations_;
  const hex::CellIndex cell =
      hex::LatLngToCell(position, inventory_->resolution());
  const core::CellSummary* summary = inventory_->CellType(cell, segment);
  if (summary == nullptr) summary = inventory_->Cell(cell);
  if (summary == nullptr) return false;
  const auto top = summary->destinations().TopN(5);
  if (top.empty()) return false;
  // Age existing votes, then add the cell's destination shares.
  for (auto& [port, weight] : votes_) weight *= decay_;
  uint64_t total = 0;
  for (const auto& entry : top) total += entry.count;
  if (total == 0) return false;
  for (const auto& entry : top) {
    votes_[static_cast<sim::PortId>(entry.key)] +=
        static_cast<double>(entry.count) / static_cast<double>(total);
  }
  return true;
}

std::vector<DestinationGuess> DestinationPredictor::Ranking(size_t n) const {
  double total = 0.0;
  for (const auto& [port, weight] : votes_) total += weight;
  std::vector<DestinationGuess> ranking;
  ranking.reserve(votes_.size());
  for (const auto& [port, weight] : votes_) {
    ranking.push_back({port, total > 0.0 ? weight / total : 0.0});
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const DestinationGuess& a, const DestinationGuess& b) {
              if (a.share != b.share) return a.share > b.share;
              return a.port < b.port;
            });
  if (ranking.size() > n) ranking.resize(n);
  return ranking;
}

sim::PortId DestinationPredictor::Predict() const {
  const auto ranking = Ranking(1);
  return ranking.empty() ? sim::kNoPort : ranking[0].port;
}

}  // namespace pol::uc
