#include "usecases/route_forecast.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "geo/geodesic.h"
#include "hexgrid/hexgrid.h"

namespace pol::uc {
namespace {

// Snaps a position to the nearest cell of the corridor set, within a few
// cell widths (a live vessel is rarely exactly on a historical centre).
hex::CellIndex SnapToCorridor(
    const std::unordered_set<hex::CellIndex>& corridor,
    const geo::LatLng& position, int res, double max_km) {
  const hex::CellIndex exact = hex::LatLngToCell(position, res);
  if (corridor.count(exact)) return exact;
  hex::CellIndex best = hex::kInvalidCell;
  double best_km = max_km;
  for (const hex::CellIndex cell : corridor) {
    const double d = geo::HaversineKm(position, hex::CellToLatLng(cell));
    if (d < best_km) {
      best_km = d;
      best = cell;
    }
  }
  return best;
}

}  // namespace

Result<RouteForecast> RouteForecaster::Forecast(
    const geo::LatLng& position, sim::PortId origin, sim::PortId destination,
    ais::MarketSegment segment) const {
  POL_ASSIGN_OR_RETURN(const sim::Port* dest_port,
                       ports_->Find(destination));
  const int res = inventory_->resolution();

  // The full set of cells historical voyages of this key crossed.
  const std::vector<hex::CellIndex> cells =
      inventory_->CellsForRoute(origin, destination, segment);
  if (cells.empty()) {
    return Status::NotFound("no historical cells for this route key");
  }
  const std::unordered_set<hex::CellIndex> corridor(cells.begin(),
                                                    cells.end());

  // Current and target cells (snapped into the corridor).
  const double snap_km = hex::EdgeLengthKm(res) * 5.0;
  const hex::CellIndex start =
      SnapToCorridor(corridor, position, res, snap_km);
  if (start == hex::kInvalidCell) {
    return Status::NotFound("position is outside the historical corridor");
  }
  const hex::CellIndex goal = SnapToCorridor(
      corridor, dest_port->position, res,
      dest_port->geofence_radius_km + hex::EdgeLengthKm(res) * 8.0);
  if (goal == hex::kInvalidCell) {
    return Status::NotFound("corridor does not reach the destination");
  }

  // Directed transition graph over the corridor.
  std::unordered_map<hex::CellIndex, std::vector<hex::CellIndex>> edges;
  size_t edge_count = 0;
  for (const hex::CellIndex cell : cells) {
    const core::CellSummary* summary =
        inventory_->CellRouteType(cell, origin, destination, segment);
    if (summary == nullptr) continue;
    for (const auto& entry : summary->transitions().Entries()) {
      const hex::CellIndex next = entry.key;
      if (!corridor.count(next)) continue;
      edges[cell].push_back(next);
      ++edge_count;
    }
  }
  // Bridge reporting gaps: reception is sparse mid-ocean, so consecutive
  // reports of the training voyages often skip cells and the recorded
  // transitions alone leave holes. Corridor cells within a few cell
  // widths of each other are connected bidirectionally — membership in
  // the corridor already certifies historical presence for this exact
  // route key, so bridging stays inside observed behaviour.
  {
    const double bridge_km = hex::EdgeLengthKm(res) * 4.5;
    std::vector<geo::LatLng> centers;
    centers.reserve(cells.size());
    for (const hex::CellIndex cell : cells) {
      centers.push_back(hex::CellToLatLng(cell));
    }
    // Bucket by the grandparent cell (~7 cell widths) so each cell is
    // only compared against candidates in its own and adjacent buckets.
    const int bucket_res = res >= 2 ? res - 2 : 0;
    std::unordered_map<hex::CellIndex, std::vector<size_t>> buckets;
    for (size_t i = 0; i < cells.size(); ++i) {
      buckets[hex::CellToParent(cells[i], bucket_res)].push_back(i);
    }
    for (const auto& [bucket_cell, members] : buckets) {
      for (const hex::CellIndex area : hex::GridDisk(bucket_cell, 1)) {
        const auto it = buckets.find(area);
        if (it == buckets.end()) continue;
        for (const size_t i : members) {
          for (const size_t j : it->second) {
            if (j <= i) continue;
            if (geo::HaversineKm(centers[i], centers[j]) <= bridge_km) {
              edges[cells[i]].push_back(cells[j]);
              edges[cells[j]].push_back(cells[i]);
              edge_count += 2;
            }
          }
        }
      }
    }
  }

  // A* with great-circle distance to the goal as the (admissible)
  // heuristic and centre-to-centre distance as the edge cost.
  const geo::LatLng goal_pos = hex::CellToLatLng(goal);
  using QueueEntry = std::pair<double, hex::CellIndex>;  // (f-score, cell).
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      open;
  std::unordered_map<hex::CellIndex, double> g_score;
  std::unordered_map<hex::CellIndex, hex::CellIndex> came_from;
  g_score[start] = 0.0;
  open.push({geo::HaversineKm(hex::CellToLatLng(start), goal_pos), start});
  while (!open.empty()) {
    const auto [f, cell] = open.top();
    open.pop();
    if (cell == goal) break;
    const auto g_it = g_score.find(cell);
    const double g = g_it->second;
    if (f > g + geo::HaversineKm(hex::CellToLatLng(cell), goal_pos) + 1e-6) {
      continue;  // Stale queue entry.
    }
    const auto edge_it = edges.find(cell);
    if (edge_it == edges.end()) continue;
    const geo::LatLng cell_pos = hex::CellToLatLng(cell);
    for (const hex::CellIndex next : edge_it->second) {
      const geo::LatLng next_pos = hex::CellToLatLng(next);
      const double tentative = g + geo::HaversineKm(cell_pos, next_pos);
      const auto it = g_score.find(next);
      if (it == g_score.end() || tentative < it->second - 1e-9) {
        g_score[next] = tentative;
        came_from[next] = cell;
        open.push({tentative + geo::HaversineKm(next_pos, goal_pos), next});
      }
    }
  }
  if (!g_score.count(goal)) {
    return Status::NotFound("transition graph does not connect to the goal");
  }

  RouteForecast forecast;
  forecast.distance_km = g_score[goal];
  forecast.graph_cells = corridor.size();
  forecast.graph_edges = edge_count;
  for (hex::CellIndex cell = goal;;) {
    forecast.cells.push_back(cell);
    const auto it = came_from.find(cell);
    if (it == came_from.end()) break;
    cell = it->second;
  }
  std::reverse(forecast.cells.begin(), forecast.cells.end());
  return forecast;
}

}  // namespace pol::uc
