#ifndef POL_USECASES_ETA_H_
#define POL_USECASES_ETA_H_

#include "common/status.h"
#include "core/inventory_query.h"

// Estimated time of arrival from the inventory's historical ATA
// statistics (paper section 4.1.2): the per-cell actual-time-to-arrival
// distribution of past voyages is itself a baseline ETA estimator for a
// vessel observed in that cell.

namespace pol::uc {

struct EtaEstimate {
  // Remaining seconds to destination.
  double seconds = 0.0;
  // 10th / 90th percentile band of historical arrivals.
  double p10_seconds = 0.0;
  double p90_seconds = 0.0;
  // How many historical records back the estimate.
  uint64_t support = 0;
  // Which grouping set answered (2 = route-specific, 1 = per-type,
  // 0 = all-traffic: decreasing specificity).
  int grouping_set = -1;
};

class EtaEstimator {
 public:
  explicit EtaEstimator(const core::InventoryQuery* inventory)
      : inventory_(inventory) {}

  // Estimates the remaining time for a vessel at `position`. The most
  // specific available summary answers: (cell, origin, destination,
  // segment) when the route is declared, then (cell, segment), then the
  // whole cell. NotFound when the cell has no history at all.
  Result<EtaEstimate> Estimate(const geo::LatLng& position,
                               ais::MarketSegment segment,
                               sim::PortId origin = sim::kNoPort,
                               sim::PortId destination = sim::kNoPort) const;

 private:
  const core::InventoryQuery* inventory_;
};

}  // namespace pol::uc

#endif  // POL_USECASES_ETA_H_
