#include "ais/nmea.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "ais/bit_buffer.h"
#include "common/failpoint.h"
#include "obs/metrics.h"

namespace pol::ais {
namespace {

// Payload armouring (IEC 61162-1): 6-bit value -> printable character.
char ArmorChar(uint8_t value) {
  return static_cast<char>(value < 40 ? value + 48 : value + 56);
}

// Inverse armouring; returns 0xff for characters outside the alphabet.
uint8_t UnarmorChar(char c) {
  const int v = static_cast<unsigned char>(c);
  if (v >= 48 && v < 88) return static_cast<uint8_t>(v - 48);
  if (v >= 96 && v < 120) return static_cast<uint8_t>(v - 56);
  return 0xff;
}

std::string FormatSentence(int total, int number, int sequence_id,
                           const std::string& payload, int fill_bits) {
  char seq[4] = "";
  if (total > 1) std::snprintf(seq, sizeof(seq), "%d", sequence_id);
  char body[128];
  std::snprintf(body, sizeof(body), "AIVDM,%d,%d,%s,A,%s,%d", total, number,
                seq, payload.c_str(), fill_bits);
  char sentence[160];
  std::snprintf(sentence, sizeof(sentence), "!%s*%02X", body,
                NmeaChecksum(body));
  return sentence;
}

// Quantization helpers per ITU-R M.1371 field resolutions.
int64_t QuantizeLng(double lng_deg) {
  return static_cast<int64_t>(std::llround(lng_deg * 600000.0));
}
int64_t QuantizeLat(double lat_deg) {
  return static_cast<int64_t>(std::llround(lat_deg * 600000.0));
}
uint64_t QuantizeSog(double sog_knots) {
  return static_cast<uint64_t>(std::llround(sog_knots * 10.0));
}
uint64_t QuantizeCog(double cog_deg) {
  return static_cast<uint64_t>(std::llround(cog_deg * 10.0));
}

void WriteCommonPositionFields(BitWriter& writer,
                               const PositionReport& report) {
  writer.WriteUint(QuantizeSog(report.sog_knots), 10);
  writer.WriteUint(0, 1);  // Position accuracy.
  writer.WriteInt(QuantizeLng(report.lng_deg), 28);
  writer.WriteInt(QuantizeLat(report.lat_deg), 27);
  writer.WriteUint(QuantizeCog(report.cog_deg), 12);
  const uint64_t heading =
      report.heading_deg == kHeadingUnavailable
          ? 511
          : static_cast<uint64_t>(std::llround(report.heading_deg)) % 360;
  writer.WriteUint(heading, 9);
  writer.WriteUint(static_cast<uint64_t>(report.timestamp % 60), 6);
}

}  // namespace

uint8_t NmeaChecksum(std::string_view body) {
  uint8_t checksum = 0;
  for (const char c : body) checksum ^= static_cast<uint8_t>(c);
  return checksum;
}

Result<std::string> EncodePositionNmea(const PositionReport& report) {
  POL_RETURN_IF_ERROR(ValidatePositionReport(report));
  BitWriter writer;
  writer.WriteUint(report.message_type, 6);
  writer.WriteUint(0, 2);  // Repeat indicator.
  writer.WriteUint(report.mmsi, 30);
  if (report.message_type == 18) {
    writer.WriteUint(0, 8);  // Regional reserved.
    WriteCommonPositionFields(writer, report);
    writer.WriteUint(0, 2);   // Regional reserved.
    writer.WriteUint(1, 1);   // CS unit (carrier sense).
    writer.WriteUint(0, 1);   // Display flag.
    writer.WriteUint(0, 1);   // DSC flag.
    writer.WriteUint(1, 1);   // Band flag.
    writer.WriteUint(0, 1);   // Message 22 flag.
    writer.WriteUint(0, 1);   // Assigned mode.
    writer.WriteUint(0, 1);   // RAIM.
    writer.WriteUint(0, 20);  // Radio status.
  } else {
    writer.WriteUint(static_cast<uint64_t>(report.nav_status), 4);
    writer.WriteInt(-128, 8);  // Rate of turn: not available.
    WriteCommonPositionFields(writer, report);
    writer.WriteUint(0, 2);   // Manoeuvre indicator.
    writer.WriteUint(0, 3);   // Spare.
    writer.WriteUint(0, 1);   // RAIM.
    writer.WriteUint(0, 19);  // Radio status.
  }
  int fill_bits = 0;
  const std::vector<uint8_t> symbols = writer.ToSixBitSymbols(&fill_bits);
  std::string payload;
  payload.reserve(symbols.size());
  for (const uint8_t s : symbols) payload.push_back(ArmorChar(s));
  return FormatSentence(1, 1, 0, payload, fill_bits);
}

Result<std::vector<std::string>> EncodeStaticVoyageNmea(
    const StaticVoyageReport& report, int sequence_id) {
  if (!IsPlausibleMmsi(report.mmsi)) {
    return Status::InvalidArgument("implausible MMSI");
  }
  if (sequence_id < 0 || sequence_id > 9) {
    return Status::InvalidArgument("sequence id outside [0, 9]");
  }
  BitWriter writer;
  writer.WriteUint(5, 6);
  writer.WriteUint(0, 2);  // Repeat indicator.
  writer.WriteUint(report.mmsi, 30);
  writer.WriteUint(0, 2);  // AIS version.
  writer.WriteUint(report.imo_number, 30);
  writer.WriteString6(report.callsign, 7);
  writer.WriteString6(report.name, 20);
  writer.WriteUint(report.ship_type_code, 8);
  writer.WriteUint(static_cast<uint64_t>(report.to_bow), 9);
  writer.WriteUint(static_cast<uint64_t>(report.to_stern), 9);
  writer.WriteUint(static_cast<uint64_t>(report.to_port), 6);
  writer.WriteUint(static_cast<uint64_t>(report.to_starboard), 6);
  writer.WriteUint(1, 4);  // Fix type: GPS.
  writer.WriteUint(static_cast<uint64_t>(report.eta_month), 4);
  writer.WriteUint(static_cast<uint64_t>(report.eta_day), 5);
  writer.WriteUint(static_cast<uint64_t>(report.eta_hour), 5);
  writer.WriteUint(static_cast<uint64_t>(report.eta_minute), 6);
  writer.WriteUint(static_cast<uint64_t>(std::llround(report.draught_m * 10)),
                   8);
  writer.WriteString6(report.destination, 20);
  writer.WriteUint(0, 1);  // DTE.
  writer.WriteUint(0, 1);  // Spare.

  int fill_bits = 0;
  const std::vector<uint8_t> symbols = writer.ToSixBitSymbols(&fill_bits);
  // Conventional split: at most 60 payload characters per sentence.
  constexpr size_t kMaxPayload = 60;
  const int total =
      static_cast<int>((symbols.size() + kMaxPayload - 1) / kMaxPayload);
  std::vector<std::string> sentences;
  for (int part = 0; part < total; ++part) {
    const size_t begin = static_cast<size_t>(part) * kMaxPayload;
    const size_t end = std::min(symbols.size(), begin + kMaxPayload);
    std::string payload;
    payload.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) payload.push_back(ArmorChar(symbols[i]));
    const int part_fill = (part == total - 1) ? fill_bits : 0;
    sentences.push_back(
        FormatSentence(total, part + 1, sequence_id, payload, part_fill));
  }
  return sentences;
}

namespace {

std::string ArmorToSentence(const BitWriter& writer) {
  int fill_bits = 0;
  const std::vector<uint8_t> symbols = writer.ToSixBitSymbols(&fill_bits);
  std::string payload;
  payload.reserve(symbols.size());
  for (const uint8_t s : symbols) payload.push_back(ArmorChar(s));
  return FormatSentence(1, 1, 0, payload, fill_bits);
}

}  // namespace

Result<std::string> EncodeExtendedClassBNmea(
    const PositionReport& position, const ClassBStaticReport& statics) {
  PositionReport validated = position;
  validated.message_type = 18;  // Reuse the class B validation rules.
  POL_RETURN_IF_ERROR(ValidatePositionReport(validated));
  BitWriter writer;
  writer.WriteUint(19, 6);
  writer.WriteUint(0, 2);  // Repeat indicator.
  writer.WriteUint(position.mmsi, 30);
  writer.WriteUint(0, 8);  // Regional reserved.
  WriteCommonPositionFields(writer, position);
  writer.WriteUint(0, 4);  // Regional reserved.
  writer.WriteString6(statics.name, 20);
  writer.WriteUint(statics.ship_type_code, 8);
  writer.WriteUint(static_cast<uint64_t>(statics.to_bow), 9);
  writer.WriteUint(static_cast<uint64_t>(statics.to_stern), 9);
  writer.WriteUint(static_cast<uint64_t>(statics.to_port), 6);
  writer.WriteUint(static_cast<uint64_t>(statics.to_starboard), 6);
  writer.WriteUint(1, 4);  // Fix type: GPS.
  writer.WriteUint(0, 1);  // RAIM.
  writer.WriteUint(0, 1);  // DTE.
  writer.WriteUint(0, 1);  // Assigned mode.
  writer.WriteUint(0, 4);  // Spare.
  return ArmorToSentence(writer);
}

Result<std::string> EncodeBaseStationNmea(const BaseStationReport& report) {
  if (!IsPlausibleMmsi(report.mmsi)) {
    return Status::InvalidArgument("implausible MMSI");
  }
  BitWriter writer;
  writer.WriteUint(4, 6);
  writer.WriteUint(0, 2);
  writer.WriteUint(report.mmsi, 30);
  writer.WriteUint(static_cast<uint64_t>(report.year), 14);
  writer.WriteUint(static_cast<uint64_t>(report.month), 4);
  writer.WriteUint(static_cast<uint64_t>(report.day), 5);
  writer.WriteUint(static_cast<uint64_t>(report.hour), 5);
  writer.WriteUint(static_cast<uint64_t>(report.minute), 6);
  writer.WriteUint(static_cast<uint64_t>(report.second), 6);
  writer.WriteUint(0, 1);  // Accuracy.
  writer.WriteInt(QuantizeLng(report.lng_deg), 28);
  writer.WriteInt(QuantizeLat(report.lat_deg), 27);
  writer.WriteUint(7, 4);   // Fix type: surveyed.
  writer.WriteUint(0, 10);  // Spare.
  writer.WriteUint(0, 1);   // RAIM.
  writer.WriteUint(0, 19);  // Radio status.
  return ArmorToSentence(writer);
}

Result<std::string> EncodeClassBStaticNmea(const ClassBStaticReport& report) {
  if (!IsPlausibleMmsi(report.mmsi)) {
    return Status::InvalidArgument("implausible MMSI");
  }
  if (report.part != 0 && report.part != 1) {
    return Status::InvalidArgument("part must be 0 (A) or 1 (B)");
  }
  BitWriter writer;
  writer.WriteUint(24, 6);
  writer.WriteUint(0, 2);
  writer.WriteUint(report.mmsi, 30);
  writer.WriteUint(static_cast<uint64_t>(report.part), 2);
  if (report.part == 0) {
    writer.WriteString6(report.name, 20);
  } else {
    writer.WriteUint(report.ship_type_code, 8);
    writer.WriteString6("", 7);  // Vendor id.
    writer.WriteString6(report.callsign, 7);
    writer.WriteUint(static_cast<uint64_t>(report.to_bow), 9);
    writer.WriteUint(static_cast<uint64_t>(report.to_stern), 9);
    writer.WriteUint(static_cast<uint64_t>(report.to_port), 6);
    writer.WriteUint(static_cast<uint64_t>(report.to_starboard), 6);
    writer.WriteUint(0, 6);  // Spare.
  }
  return ArmorToSentence(writer);
}

Result<Decoded> NmeaDecoder::Feed(std::string_view sentence) {
  const uint64_t sequence = ++fed_;
  const Status injected = POL_FAILPOINT("ingest.nmea");
  Result<Decoded> result =
      injected.ok() ? FeedInternal(sentence) : Result<Decoded>(injected);
  if (!result.ok() && quarantine_ != nullptr) {
    quarantine_->Record("ingest.nmea", result.status(), sentence, sequence);
  }
  if constexpr (obs::kEnabled) {
    // Feed is the per-sentence hot path: resolve the handles once per
    // process, then recording is relaxed atomics only.
    static obs::Counter* const sentences =
        obs::Registry::Global().counter("ingest.nmea.sentences");
    static obs::Counter* const errors =
        obs::Registry::Global().counter("ingest.nmea.errors");
    static obs::Counter* const messages =
        obs::Registry::Global().counter("ingest.nmea.messages");
    sentences->Increment();
    if (!result.ok()) {
      errors->Increment();
    } else if (result->message_type != 0) {
      messages->Increment();
    }
  }
  return result;
}

Result<Decoded> NmeaDecoder::FeedInternal(std::string_view sentence) {
  // Frame: !AIVDM,<total>,<num>,<seq>,<chan>,<payload>,<fill>*<checksum>
  if (sentence.size() < 16 || sentence[0] != '!') {
    return Status::InvalidArgument("not an NMEA sentence");
  }
  const size_t star = sentence.rfind('*');
  if (star == std::string_view::npos || star + 3 > sentence.size()) {
    return Status::Corruption("missing checksum");
  }
  const std::string_view body = sentence.substr(1, star - 1);
  unsigned int declared = 0;
  if (std::sscanf(std::string(sentence.substr(star + 1, 2)).c_str(), "%2x",
                  &declared) != 1 ||
      declared != NmeaChecksum(body)) {
    return Status::Corruption("checksum mismatch");
  }

  // Split the body on commas.
  std::vector<std::string_view> fields;
  size_t start = 0;
  for (size_t i = 0; i <= body.size(); ++i) {
    if (i == body.size() || body[i] == ',') {
      fields.push_back(body.substr(start, i - start));
      start = i + 1;
    }
  }
  if (fields.size() != 7) return Status::Corruption("wrong field count");
  if (fields[0] != "AIVDM" && fields[0] != "AIVDO") {
    return Status::InvalidArgument("not an AIVDM/AIVDO sentence");
  }
  const int total = std::atoi(std::string(fields[1]).c_str());
  const int number = std::atoi(std::string(fields[2]).c_str());
  const int fill_bits = std::atoi(std::string(fields[6]).c_str());
  if (total < 1 || total > 9 || number < 1 || number > total ||
      fill_bits < 0 || fill_bits > 5) {
    return Status::Corruption("bad sentence numbering");
  }

  std::vector<uint8_t> symbols;
  symbols.reserve(fields[5].size());
  for (const char c : fields[5]) {
    const uint8_t v = UnarmorChar(c);
    if (v == 0xff) return Status::Corruption("bad payload character");
    symbols.push_back(v);
  }

  if (total == 1) return DecodePayload(symbols, fill_bits);

  // Multi-sentence assembly keyed by (sequence id, channel).
  const std::string key =
      std::string(fields[3]) + "/" + std::string(fields[4]);
  Pending& pending = pending_[key];
  if (pending.total == 0) {
    pending.total = total;
    pending.parts.assign(static_cast<size_t>(total), {});
  } else if (pending.total != total) {
    pending_.erase(key);
    return Status::Corruption("inconsistent part count");
  }
  auto& slot = pending.parts[static_cast<size_t>(number - 1)];
  if (slot.empty()) ++pending.received;
  slot = std::move(symbols);
  if (number == total) pending.last_fill_bits = fill_bits;
  if (pending.received < pending.total) {
    return Decoded{};  // message_type == 0: waiting for more parts.
  }
  std::vector<uint8_t> assembled;
  for (const auto& part : pending.parts) {
    assembled.insert(assembled.end(), part.begin(), part.end());
  }
  const int final_fill = pending.last_fill_bits;
  pending_.erase(key);
  return DecodePayload(assembled, final_fill);
}

Result<Decoded> NmeaDecoder::DecodePayload(const std::vector<uint8_t>& symbols,
                                           int fill_bits) {
  BitReader reader = BitReader::FromSixBitSymbols(symbols, fill_bits);
  bool ok = true;
  const int type = static_cast<int>(reader.ReadUint(6, &ok));
  if (!ok) return Status::Corruption("empty payload");

  Decoded decoded;
  decoded.message_type = type;
  if (type == 19) {
    PositionReport& report = decoded.position;
    ClassBStaticReport& statics = decoded.class_b_static;
    report.message_type = 19;
    report.nav_status = NavStatus::kNotDefined;
    reader.ReadUint(2, &ok);  // Repeat indicator.
    report.mmsi = static_cast<Mmsi>(reader.ReadUint(30, &ok));
    statics.mmsi = report.mmsi;
    reader.ReadUint(8, &ok);  // Regional reserved.
    report.sog_knots = static_cast<double>(reader.ReadUint(10, &ok)) / 10.0;
    reader.ReadUint(1, &ok);  // Accuracy.
    report.lng_deg = static_cast<double>(reader.ReadInt(28, &ok)) / 600000.0;
    report.lat_deg = static_cast<double>(reader.ReadInt(27, &ok)) / 600000.0;
    report.cog_deg = static_cast<double>(reader.ReadUint(12, &ok)) / 10.0;
    const uint64_t heading = reader.ReadUint(9, &ok);
    report.heading_deg = heading == 511 ? kHeadingUnavailable
                                        : static_cast<double>(heading);
    report.timestamp = static_cast<UnixSeconds>(reader.ReadUint(6, &ok));
    reader.ReadUint(4, &ok);  // Regional reserved.
    statics.name = reader.ReadString6(20, &ok);
    statics.ship_type_code = static_cast<uint8_t>(reader.ReadUint(8, &ok));
    statics.to_bow = static_cast<int>(reader.ReadUint(9, &ok));
    statics.to_stern = static_cast<int>(reader.ReadUint(9, &ok));
    statics.to_port = static_cast<int>(reader.ReadUint(6, &ok));
    statics.to_starboard = static_cast<int>(reader.ReadUint(6, &ok));
    if (!ok) return Status::Corruption("truncated type 19 payload");
    return decoded;
  }
  if (type == 1 || type == 2 || type == 3 || type == 18) {
    PositionReport& report = decoded.position;
    report.message_type = static_cast<uint8_t>(type);
    reader.ReadUint(2, &ok);  // Repeat indicator.
    report.mmsi = static_cast<Mmsi>(reader.ReadUint(30, &ok));
    if (type == 18) {
      reader.ReadUint(8, &ok);  // Regional reserved.
      report.nav_status = NavStatus::kNotDefined;
    } else {
      report.nav_status = static_cast<NavStatus>(reader.ReadUint(4, &ok));
      reader.ReadInt(8, &ok);  // Rate of turn.
    }
    report.sog_knots = static_cast<double>(reader.ReadUint(10, &ok)) / 10.0;
    reader.ReadUint(1, &ok);  // Accuracy.
    report.lng_deg = static_cast<double>(reader.ReadInt(28, &ok)) / 600000.0;
    report.lat_deg = static_cast<double>(reader.ReadInt(27, &ok)) / 600000.0;
    report.cog_deg = static_cast<double>(reader.ReadUint(12, &ok)) / 10.0;
    const uint64_t heading = reader.ReadUint(9, &ok);
    report.heading_deg = heading == 511 ? kHeadingUnavailable
                                        : static_cast<double>(heading);
    report.timestamp =
        static_cast<UnixSeconds>(reader.ReadUint(6, &ok));  // UTC second.
    if (!ok) return Status::Corruption("truncated position payload");
    return decoded;
  }
  if (type == 5) {
    StaticVoyageReport& report = decoded.static_voyage;
    reader.ReadUint(2, &ok);  // Repeat indicator.
    report.mmsi = static_cast<Mmsi>(reader.ReadUint(30, &ok));
    reader.ReadUint(2, &ok);  // AIS version.
    report.imo_number = static_cast<uint32_t>(reader.ReadUint(30, &ok));
    report.callsign = reader.ReadString6(7, &ok);
    report.name = reader.ReadString6(20, &ok);
    report.ship_type_code = static_cast<uint8_t>(reader.ReadUint(8, &ok));
    report.to_bow = static_cast<int>(reader.ReadUint(9, &ok));
    report.to_stern = static_cast<int>(reader.ReadUint(9, &ok));
    report.to_port = static_cast<int>(reader.ReadUint(6, &ok));
    report.to_starboard = static_cast<int>(reader.ReadUint(6, &ok));
    reader.ReadUint(4, &ok);  // Fix type.
    report.eta_month = static_cast<int>(reader.ReadUint(4, &ok));
    report.eta_day = static_cast<int>(reader.ReadUint(5, &ok));
    report.eta_hour = static_cast<int>(reader.ReadUint(5, &ok));
    report.eta_minute = static_cast<int>(reader.ReadUint(6, &ok));
    report.draught_m = static_cast<double>(reader.ReadUint(8, &ok)) / 10.0;
    report.destination = reader.ReadString6(20, &ok);
    if (!ok) return Status::Corruption("truncated static payload");
    return decoded;
  }
  if (type == 4) {
    BaseStationReport& report = decoded.base_station;
    reader.ReadUint(2, &ok);  // Repeat indicator.
    report.mmsi = static_cast<Mmsi>(reader.ReadUint(30, &ok));
    report.year = static_cast<int>(reader.ReadUint(14, &ok));
    report.month = static_cast<int>(reader.ReadUint(4, &ok));
    report.day = static_cast<int>(reader.ReadUint(5, &ok));
    report.hour = static_cast<int>(reader.ReadUint(5, &ok));
    report.minute = static_cast<int>(reader.ReadUint(6, &ok));
    report.second = static_cast<int>(reader.ReadUint(6, &ok));
    reader.ReadUint(1, &ok);  // Accuracy.
    report.lng_deg = static_cast<double>(reader.ReadInt(28, &ok)) / 600000.0;
    report.lat_deg = static_cast<double>(reader.ReadInt(27, &ok)) / 600000.0;
    if (!ok) return Status::Corruption("truncated base station payload");
    return decoded;
  }
  if (type == 24) {
    ClassBStaticReport& report = decoded.class_b_static;
    reader.ReadUint(2, &ok);  // Repeat indicator.
    report.mmsi = static_cast<Mmsi>(reader.ReadUint(30, &ok));
    report.part = static_cast<int>(reader.ReadUint(2, &ok));
    if (!ok) return Status::Corruption("truncated type 24 header");
    if (report.part == 0) {
      report.name = reader.ReadString6(20, &ok);
    } else if (report.part == 1) {
      report.ship_type_code = static_cast<uint8_t>(reader.ReadUint(8, &ok));
      reader.ReadString6(7, &ok);  // Vendor id.
      report.callsign = reader.ReadString6(7, &ok);
      report.to_bow = static_cast<int>(reader.ReadUint(9, &ok));
      report.to_stern = static_cast<int>(reader.ReadUint(9, &ok));
      report.to_port = static_cast<int>(reader.ReadUint(6, &ok));
      report.to_starboard = static_cast<int>(reader.ReadUint(6, &ok));
    } else {
      return Status::Corruption("bad type 24 part number");
    }
    if (!ok) return Status::Corruption("truncated type 24 payload");
    return decoded;
  }
  ++unsupported_;
  if constexpr (obs::kEnabled) {
    static obs::Counter* const unsupported =
        obs::Registry::Global().counter("ingest.nmea.unsupported");
    unsupported->Increment();
  }
  return decoded;  // Unsupported type: reported, not an error.
}

}  // namespace pol::ais
