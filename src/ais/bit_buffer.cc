#include "ais/bit_buffer.h"

#include <string>
#include <vector>

#include "common/check.h"

namespace pol::ais {
namespace {

// Table 44 of ITU-R M.1371: values 0-31 map to '@'..'_', 32-63 to
// ' '..'?'.
constexpr char kSixBitAlphabet[] =
    "@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_ !\"#$%&'()*+,-./0123456789:;<=>?";

}  // namespace

char SixBitToChar(uint8_t value) {
  return kSixBitAlphabet[value & 0x3f];
}

uint8_t CharToSixBit(char c) {
  if (c >= '@' && c <= '_') return static_cast<uint8_t>(c - '@');
  if (c >= ' ' && c <= '?') return static_cast<uint8_t>(c - ' ' + 32);
  return 0xff;
}

void BitWriter::WriteUint(uint64_t value, int width) {
  POL_CHECK(width >= 0 && width <= 64);
  for (int bit = width - 1; bit >= 0; --bit) {
    bits_.push_back(((value >> bit) & 1) != 0);
  }
}

void BitWriter::WriteInt(int64_t value, int width) {
  WriteUint(static_cast<uint64_t>(value), width);
}

void BitWriter::WriteString6(const std::string& text, int chars) {
  for (int i = 0; i < chars; ++i) {
    uint8_t symbol = 0;  // '@' padding.
    if (i < static_cast<int>(text.size())) {
      symbol = CharToSixBit(text[static_cast<size_t>(i)]);
      if (symbol == 0xff) symbol = CharToSixBit('?');
    }
    WriteUint(symbol, 6);
  }
}

std::vector<uint8_t> BitWriter::ToSixBitSymbols(int* fill_bits) const {
  std::vector<uint8_t> symbols;
  symbols.reserve((bits_.size() + 5) / 6);
  uint8_t current = 0;
  int used = 0;
  for (const bool bit : bits_) {
    current = static_cast<uint8_t>((current << 1) | (bit ? 1 : 0));
    if (++used == 6) {
      symbols.push_back(current);
      current = 0;
      used = 0;
    }
  }
  int fill = 0;
  if (used > 0) {
    fill = 6 - used;
    symbols.push_back(static_cast<uint8_t>(current << fill));
  }
  if (fill_bits != nullptr) *fill_bits = fill;
  return symbols;
}

BitReader BitReader::FromSixBitSymbols(const std::vector<uint8_t>& symbols,
                                       int fill_bits) {
  std::vector<bool> bits;
  bits.reserve(symbols.size() * 6);
  for (const uint8_t symbol : symbols) {
    for (int bit = 5; bit >= 0; --bit) {
      bits.push_back(((symbol >> bit) & 1) != 0);
    }
  }
  if (fill_bits > 0 && fill_bits <= 5 &&
      bits.size() >= static_cast<size_t>(fill_bits)) {
    // erase (not resize) so the shrink never touches the vector<bool>
    // fill-insert path, which GCC 12 -O3 flags as a bogus huge memset.
    bits.erase(bits.end() - static_cast<std::ptrdiff_t>(fill_bits),
               bits.end());
  }
  return BitReader(std::move(bits));
}

uint64_t BitReader::ReadUint(int width, bool* ok) {
  if (width < 0 || width > 64 || Remaining() < width) {
    if (ok != nullptr) *ok = false;
    return 0;
  }
  uint64_t value = 0;
  for (int i = 0; i < width; ++i) {
    value = (value << 1) | (bits_[static_cast<size_t>(cursor_++)] ? 1 : 0);
  }
  if (ok != nullptr) *ok = true;
  return value;
}

int64_t BitReader::ReadInt(int width, bool* ok) {
  const uint64_t raw = ReadUint(width, ok);
  if (width == 0 || width == 64) return static_cast<int64_t>(raw);
  // Sign-extend.
  const uint64_t sign_bit = uint64_t{1} << (width - 1);
  if (raw & sign_bit) {
    return static_cast<int64_t>(raw | ~((uint64_t{1} << width) - 1));
  }
  return static_cast<int64_t>(raw);
}

std::string BitReader::ReadString6(int chars, bool* ok) {
  std::string out;
  out.reserve(static_cast<size_t>(chars));
  for (int i = 0; i < chars; ++i) {
    bool field_ok = false;
    const uint64_t symbol = ReadUint(6, &field_ok);
    if (!field_ok) {
      if (ok != nullptr) *ok = false;
      return out;
    }
    out.push_back(SixBitToChar(static_cast<uint8_t>(symbol)));
  }
  // Trim trailing '@' padding and spaces.
  while (!out.empty() && (out.back() == '@' || out.back() == ' ')) {
    out.pop_back();
  }
  if (ok != nullptr) *ok = true;
  return out;
}

}  // namespace pol::ais
