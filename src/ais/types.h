#ifndef POL_AIS_TYPES_H_
#define POL_AIS_TYPES_H_

#include <cstdint>
#include <string>
#include <string_view>

// AIS domain vocabulary: identifiers, navigational status, ship type
// codes and the market segments the paper groups statistics by.

namespace pol::ais {

// Maritime Mobile Service Identity: nine decimal digits.
using Mmsi = uint32_t;

// Navigational status (ITU-R M.1371, message types 1-3, 4 bits).
enum class NavStatus : uint8_t {
  kUnderWayUsingEngine = 0,
  kAtAnchor = 1,
  kNotUnderCommand = 2,
  kRestrictedManoeuvrability = 3,
  kConstrainedByDraught = 4,
  kMoored = 5,
  kAground = 6,
  kEngagedInFishing = 7,
  kUnderWaySailing = 8,
  kReserved9 = 9,
  kReserved10 = 10,
  kReserved11 = 11,
  kReserved12 = 12,
  kReserved13 = 13,
  kAisSartActive = 14,
  kNotDefined = 15,
};

std::string_view NavStatusName(NavStatus status);

// Transceiver class. Class A is compulsory for vessels over 299 GT;
// class B is the low-cost option for smaller craft.
enum class TransceiverClass : uint8_t { kClassA = 0, kClassB = 1 };

// Market segments used by the inventory's grouping sets. The AIS ship
// type code only distinguishes coarse classes; the finer commercial
// segments (container vs dry bulk) come from the vessel registry, as in
// the paper (MarineTraffic's static vessel database).
enum class MarketSegment : uint8_t {
  kContainer = 0,
  kDryBulk = 1,
  kTanker = 2,
  kGeneralCargo = 3,
  kPassenger = 4,
  kFishing = 5,
  kTugAndService = 6,
  kPleasure = 7,
  kOther = 8,
};

inline constexpr int kNumMarketSegments = 9;

std::string_view MarketSegmentName(MarketSegment segment);

// Coarse market segment implied by an AIS ship type code (message 5).
MarketSegment SegmentFromShipTypeCode(uint8_t type_code);

// A representative AIS ship type code for a market segment (used when
// synthesizing static reports).
uint8_t ShipTypeCodeForSegment(MarketSegment segment);

// Static registry record for one vessel (the paper's "vessel static
// information" dataset of Table 1).
struct VesselInfo {
  Mmsi mmsi = 0;
  std::string name;
  MarketSegment segment = MarketSegment::kOther;
  uint8_t ship_type_code = 0;
  TransceiverClass transceiver = TransceiverClass::kClassA;
  int gross_tonnage = 0;
  double length_m = 0.0;
  double design_speed_knots = 0.0;
};

// The paper's commercial-fleet filter: logistics-chain segments with a
// tonnage above 5000 GT and a class A transceiver (section 3.1.1).
bool IsCommercialFleet(const VesselInfo& vessel);

// True for the cargo-carrying segments of the logistics chain.
bool IsLogisticsSegment(MarketSegment segment);

}  // namespace pol::ais

#endif  // POL_AIS_TYPES_H_
