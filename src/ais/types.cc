#include "ais/types.h"

#include <string_view>

namespace pol::ais {

std::string_view NavStatusName(NavStatus status) {
  switch (status) {
    case NavStatus::kUnderWayUsingEngine:
      return "under way using engine";
    case NavStatus::kAtAnchor:
      return "at anchor";
    case NavStatus::kNotUnderCommand:
      return "not under command";
    case NavStatus::kRestrictedManoeuvrability:
      return "restricted manoeuvrability";
    case NavStatus::kConstrainedByDraught:
      return "constrained by draught";
    case NavStatus::kMoored:
      return "moored";
    case NavStatus::kAground:
      return "aground";
    case NavStatus::kEngagedInFishing:
      return "engaged in fishing";
    case NavStatus::kUnderWaySailing:
      return "under way sailing";
    case NavStatus::kAisSartActive:
      return "AIS-SART active";
    default:
      return "not defined";
  }
}

std::string_view MarketSegmentName(MarketSegment segment) {
  switch (segment) {
    case MarketSegment::kContainer:
      return "container";
    case MarketSegment::kDryBulk:
      return "dry bulk";
    case MarketSegment::kTanker:
      return "tanker";
    case MarketSegment::kGeneralCargo:
      return "general cargo";
    case MarketSegment::kPassenger:
      return "passenger";
    case MarketSegment::kFishing:
      return "fishing";
    case MarketSegment::kTugAndService:
      return "tug/service";
    case MarketSegment::kPleasure:
      return "pleasure";
    case MarketSegment::kOther:
      return "other";
  }
  return "other";
}

MarketSegment SegmentFromShipTypeCode(uint8_t type_code) {
  if (type_code == 30) return MarketSegment::kFishing;
  if (type_code == 31 || type_code == 32 || type_code == 52) {
    return MarketSegment::kTugAndService;
  }
  if (type_code == 36 || type_code == 37) return MarketSegment::kPleasure;
  if (type_code >= 60 && type_code <= 69) return MarketSegment::kPassenger;
  if (type_code >= 70 && type_code <= 79) {
    // The AIS code block 70-79 covers all cargo; the registry refines it.
    return MarketSegment::kGeneralCargo;
  }
  if (type_code >= 80 && type_code <= 89) return MarketSegment::kTanker;
  return MarketSegment::kOther;
}

uint8_t ShipTypeCodeForSegment(MarketSegment segment) {
  switch (segment) {
    case MarketSegment::kContainer:
      return 71;  // Cargo, hazardous category A — conventional stand-in.
    case MarketSegment::kDryBulk:
      return 70;
    case MarketSegment::kGeneralCargo:
      return 70;
    case MarketSegment::kTanker:
      return 80;
    case MarketSegment::kPassenger:
      return 60;
    case MarketSegment::kFishing:
      return 30;
    case MarketSegment::kTugAndService:
      return 52;
    case MarketSegment::kPleasure:
      return 37;
    case MarketSegment::kOther:
      return 90;
  }
  return 90;
}

bool IsLogisticsSegment(MarketSegment segment) {
  switch (segment) {
    case MarketSegment::kContainer:
    case MarketSegment::kDryBulk:
    case MarketSegment::kTanker:
    case MarketSegment::kGeneralCargo:
    case MarketSegment::kPassenger:
      return true;
    default:
      return false;
  }
}

bool IsCommercialFleet(const VesselInfo& vessel) {
  return IsLogisticsSegment(vessel.segment) && vessel.gross_tonnage > 5000 &&
         vessel.transceiver == TransceiverClass::kClassA;
}

}  // namespace pol::ais
