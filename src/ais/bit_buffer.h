#ifndef POL_AIS_BIT_BUFFER_H_
#define POL_AIS_BIT_BUFFER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

// Bit-level packing for AIS payloads. AIS messages are defined as
// big-endian bit fields of arbitrary width (ITU-R M.1371 table layouts);
// strings use a 6-bit character set.

namespace pol::ais {

// Writes big-endian bit fields into a growing bit string.
class BitWriter {
 public:
  BitWriter() = default;

  // Appends the low `width` bits of `value`, most significant first.
  // width in [0, 64].
  void WriteUint(uint64_t value, int width);

  // Appends a signed value in two's complement.
  void WriteInt(int64_t value, int width);

  // Appends `chars` characters of 6-bit ASCII, padding with '@' (0).
  // Characters outside the 6-bit set are mapped to '?'.
  void WriteString6(const std::string& text, int chars);

  int BitCount() const { return static_cast<int>(bits_.size()); }

  // The accumulated bits as 6-bit symbols (values 0..63), padded with
  // zero fill bits; *fill_bits receives the pad amount (0..5).
  std::vector<uint8_t> ToSixBitSymbols(int* fill_bits) const;

 private:
  std::vector<bool> bits_;
};

// Reads big-endian bit fields from a fixed bit string.
class BitReader {
 public:
  explicit BitReader(std::vector<bool> bits) : bits_(std::move(bits)) {}

  // Builds a reader from 6-bit symbols (values 0..63).
  static BitReader FromSixBitSymbols(const std::vector<uint8_t>& symbols,
                                     int fill_bits);

  // Reads `width` bits as an unsigned value; sets *ok false on overrun
  // (and returns 0) instead of failing hard.
  uint64_t ReadUint(int width, bool* ok);

  // Reads a two's-complement signed value.
  int64_t ReadInt(int width, bool* ok);

  // Reads `chars` 6-bit characters; trailing '@' padding and spaces are
  // trimmed.
  std::string ReadString6(int chars, bool* ok);

  int Remaining() const { return static_cast<int>(bits_.size()) - cursor_; }

 private:
  std::vector<bool> bits_;
  int cursor_ = 0;
};

// The 6-bit ASCII alphabet used by AIS strings.
char SixBitToChar(uint8_t value);
// Returns 0xff for characters outside the alphabet.
uint8_t CharToSixBit(char c);

}  // namespace pol::ais

#endif  // POL_AIS_BIT_BUFFER_H_
