#ifndef POL_AIS_NMEA_H_
#define POL_AIS_NMEA_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "ais/messages.h"
#include "common/quarantine.h"
#include "common/status.h"

// NMEA 0183 AIVDM framing: 6-bit payload armouring, checksums and
// multi-sentence assembly, plus the ITU-R M.1371 bit layouts for
// message types 1-3 (class A position), 18 (class B position) and 5
// (static and voyage data).
//
// This is the wire format terrestrial and satellite AIS receivers emit
// and what an archive ingestion service decodes; the quickstart example
// exercises the full path sentence -> report -> inventory.

namespace pol::ais {

// XOR checksum over the characters between '!' and '*'.
uint8_t NmeaChecksum(std::string_view body);

// Encodes a positional report as a single !AIVDM sentence. Class A
// reports use the report's message_type (1-3); message_type 18 selects
// the class B layout. The on-air timestamp field carries only
// timestamp % 60 (the UTC second), as in the real protocol.
Result<std::string> EncodePositionNmea(const PositionReport& report);

// Encodes a static/voyage report as one or more sentences (type 5 spans
// 424 bits, which does not fit one sentence). `sequence_id` in [0, 9]
// tags the parts of one message.
Result<std::vector<std::string>> EncodeStaticVoyageNmea(
    const StaticVoyageReport& report, int sequence_id = 0);

// A decoded message. For positional types the report's timestamp holds
// ONLY the UTC second (0-59); ingestion overlays the receive minute.
struct Decoded {
  int message_type = 0;
  PositionReport position;            // Types 1-3, 18.
  StaticVoyageReport static_voyage;   // Type 5.
  BaseStationReport base_station;     // Type 4.
  ClassBStaticReport class_b_static;  // Type 24.
};

// Encodes an extended class B position report (type 19): position plus
// the static name/type/dimensions in one 312-bit message. On decode the
// position lands in `position` (message_type 19) and the static fields
// in `class_b_static`.
Result<std::string> EncodeExtendedClassBNmea(
    const PositionReport& position, const ClassBStaticReport& statics);

// Encodes a base station report (type 4).
Result<std::string> EncodeBaseStationNmea(const BaseStationReport& report);

// Encodes one part of a class B static report (type 24); the part field
// selects A (name) or B (type/callsign/dimensions).
Result<std::string> EncodeClassBStaticNmea(const ClassBStaticReport& report);

// Stateful decoder: feeds sentences one at a time, assembling
// multi-sentence messages keyed by (sequence id, channel).
//
// Fault containment: with a QuarantineStore attached, every rejected
// sentence lands there as a dead letter under source "ingest.nmea" —
// counted per failure reason, raw sentence retained (truncated) for
// postmortems — so a live feed survives corrupted input without
// silently dropping it. The same site carries the "ingest.nmea" fail
// point for fault-injection builds.
class NmeaDecoder {
 public:
  NmeaDecoder() = default;

  // Attaches a dead-letter store (non-owning; may be nullptr to
  // detach). Must outlive the decoder's Feed calls.
  void set_quarantine(QuarantineStore* store) { quarantine_ = store; }

  // Returns the decoded message when `sentence` completes one, or a
  // Decoded with message_type == 0 when more parts are pending.
  // Malformed sentences and checksum failures are errors (and dead
  // letters, when a quarantine store is attached).
  Result<Decoded> Feed(std::string_view sentence);

  // Sentences fed so far (the sequence number dead letters carry).
  uint64_t fed_count() const { return fed_; }

  // Messages types seen but not supported by the decoder (counted, not
  // errors — a live feed interleaves many types).
  uint64_t unsupported_count() const { return unsupported_; }

 private:
  struct Pending {
    int total = 0;
    int received = 0;
    std::vector<std::vector<uint8_t>> parts;
    int last_fill_bits = 0;
  };

  Result<Decoded> FeedInternal(std::string_view sentence);
  Result<Decoded> DecodePayload(const std::vector<uint8_t>& symbols,
                                int fill_bits);

  std::map<std::string, Pending> pending_;
  QuarantineStore* quarantine_ = nullptr;  // Not owned.
  uint64_t fed_ = 0;
  uint64_t unsupported_ = 0;
};

}  // namespace pol::ais

#endif  // POL_AIS_NMEA_H_
