#ifndef POL_AIS_MESSAGES_H_
#define POL_AIS_MESSAGES_H_

#include <cstdint>
#include <string>

#include "ais/types.h"
#include "common/status.h"
#include "common/time_util.h"

// In-memory message model. Positional reports (types 1-3 for class A,
// 18 for class B) are the rows of the paper's main dataset; static and
// voyage data (type 5) feed the enrichment join.

namespace pol::ais {

// Unavailable-value sentinels defined by ITU-R M.1371.
inline constexpr double kSogUnavailable = 102.3;   // 1023 in 0.1-knot units.
inline constexpr double kCogUnavailable = 360.0;   // 3600 in 0.1-deg units.
inline constexpr double kHeadingUnavailable = 511.0;
inline constexpr double kLatUnavailable = 91.0;
inline constexpr double kLngUnavailable = 181.0;

// One positional report, timestamped with the archive receive time
// (the on-air message only carries the UTC second within the minute).
struct PositionReport {
  Mmsi mmsi = 0;
  UnixSeconds timestamp = 0;
  double lat_deg = kLatUnavailable;
  double lng_deg = kLngUnavailable;
  double sog_knots = kSogUnavailable;
  double cog_deg = kCogUnavailable;
  double heading_deg = kHeadingUnavailable;
  NavStatus nav_status = NavStatus::kNotDefined;
  uint8_t message_type = 1;  // 1, 2, 3 (class A) or 18 (class B).
};

// Static and voyage-related data (message type 5).
struct StaticVoyageReport {
  Mmsi mmsi = 0;
  uint32_t imo_number = 0;
  std::string callsign;
  std::string name;
  uint8_t ship_type_code = 0;
  // Dimensions from the reference point, metres.
  int to_bow = 0;
  int to_stern = 0;
  int to_port = 0;
  int to_starboard = 0;
  // Declared ETA (month/day/hour/minute, zeros when unavailable).
  int eta_month = 0;
  int eta_day = 0;
  int eta_hour = 24;
  int eta_minute = 60;
  double draught_m = 0.0;
  std::string destination;
};

// Base station report (message type 4): a shore station broadcasting
// UTC time and its surveyed position.
struct BaseStationReport {
  Mmsi mmsi = 0;
  int year = 0;  // 1-9999; 0 = unavailable.
  int month = 0;
  int day = 0;
  int hour = 24;
  int minute = 60;
  int second = 60;
  double lat_deg = kLatUnavailable;
  double lng_deg = kLngUnavailable;
};

// Class B static data report (message type 24). Transmitted in two
// parts; part A carries the name, part B type/callsign/dimensions.
struct ClassBStaticReport {
  Mmsi mmsi = 0;
  int part = 0;  // 0 = A, 1 = B.
  std::string name;           // Part A.
  uint8_t ship_type_code = 0; // Part B.
  std::string callsign;       // Part B.
  int to_bow = 0;
  int to_stern = 0;
  int to_port = 0;
  int to_starboard = 0;
};

// Field-level validation per the protocol's legal ranges — the first
// filter of the cleaning stage (paper section 3.3.1). Reports carrying
// "unavailable" sentinels in position fields are rejected too, since
// they cannot be projected onto the grid; unavailable SOG/COG/heading
// are tolerated (the feature extractor skips them).
Status ValidatePositionReport(const PositionReport& report);

// True when every kinematic field carries a real (available) value.
bool HasFullKinematics(const PositionReport& report);

// MMSI sanity: nine digits, leading digit rules relaxed to non-zero.
bool IsPlausibleMmsi(Mmsi mmsi);

}  // namespace pol::ais

#endif  // POL_AIS_MESSAGES_H_
