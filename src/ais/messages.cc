#include "ais/messages.h"

#include <cmath>

namespace pol::ais {

Status ValidatePositionReport(const PositionReport& report) {
  if (!IsPlausibleMmsi(report.mmsi)) {
    return Status::InvalidArgument("implausible MMSI");
  }
  if (report.message_type != 1 && report.message_type != 2 &&
      report.message_type != 3 && report.message_type != 18) {
    return Status::InvalidArgument("not a positional report type");
  }
  if (!std::isfinite(report.lat_deg) || report.lat_deg < -90.0 ||
      report.lat_deg > 90.0) {
    return Status::OutOfRange("latitude outside [-90, 90]");
  }
  if (!std::isfinite(report.lng_deg) || report.lng_deg < -180.0 ||
      report.lng_deg > 180.0) {
    return Status::OutOfRange("longitude outside [-180, 180]");
  }
  if (!std::isfinite(report.sog_knots) || report.sog_knots < 0.0 ||
      report.sog_knots > kSogUnavailable) {
    return Status::OutOfRange("speed over ground outside [0, 102.3]");
  }
  if (!std::isfinite(report.cog_deg) || report.cog_deg < 0.0 ||
      report.cog_deg > kCogUnavailable) {
    return Status::OutOfRange("course over ground outside [0, 360]");
  }
  if (!std::isfinite(report.heading_deg) ||
      (report.heading_deg != kHeadingUnavailable &&
       (report.heading_deg < 0.0 || report.heading_deg >= 360.0))) {
    return Status::OutOfRange("heading outside [0, 360) and not 511");
  }
  if (static_cast<uint8_t>(report.nav_status) > 15) {
    return Status::OutOfRange("navigational status outside [0, 15]");
  }
  if (report.timestamp < 0) {
    return Status::OutOfRange("negative timestamp");
  }
  return Status::OK();
}

bool HasFullKinematics(const PositionReport& report) {
  return report.sog_knots < kSogUnavailable &&
         report.cog_deg < kCogUnavailable &&
         report.heading_deg != kHeadingUnavailable;
}

bool IsPlausibleMmsi(Mmsi mmsi) {
  return mmsi >= 100000000u && mmsi <= 999999999u;
}

}  // namespace pol::ais
