#include "geo/latlng.h"

#include <algorithm>
#include <cstdio>
#include <string>

namespace pol::geo {

LatLng LatLng::Normalized() const {
  double lat = lat_deg;
  double lng = lng_deg;
  if (lat > 90.0) lat = 90.0;
  if (lat < -90.0) lat = -90.0;
  // Wrap longitude into [-180, 180).
  lng = std::fmod(lng + 180.0, 360.0);
  if (lng < 0.0) lng += 360.0;
  lng -= 180.0;
  return {lat, lng};
}

std::string LatLng::ToString() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "(%.6f, %.6f)", lat_deg, lng_deg);
  return buf;
}

Vec3 LatLngToVec3(const LatLng& p) {
  const double lat = p.lat_rad();
  const double lng = p.lng_rad();
  const double cos_lat = std::cos(lat);
  return {cos_lat * std::cos(lng), cos_lat * std::sin(lng), std::sin(lat)};
}

LatLng Vec3ToLatLng(const Vec3& v) {
  const Vec3 u = v.Normalized();
  const double lat = std::asin(std::clamp(u.z, -1.0, 1.0));
  const double lng = std::atan2(u.y, u.x);
  return {RadToDeg(lat), RadToDeg(lng)};
}

double AngleBetween(const Vec3& a, const Vec3& b) {
  // atan2 of cross/dot is stable for both tiny and near-pi angles.
  return std::atan2(a.Cross(b).Norm(), a.Dot(b));
}

}  // namespace pol::geo
