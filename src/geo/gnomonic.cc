#include "geo/gnomonic.h"

#include <cmath>

#include "common/check.h"

namespace pol::geo {

Gnomonic::Gnomonic(const Vec3& center, const Vec3& reference_up)
    : center_(center.Normalized()) {
  // Gram-Schmidt: v axis is the component of reference_up orthogonal to
  // the centre direction.
  const Vec3 up_ortho = reference_up - center_ * reference_up.Dot(center_);
  const double n = up_ortho.Norm();
  POL_CHECK(n > 1e-12) << "reference_up parallel to center";
  axis_v_ = up_ortho * (1.0 / n);
  axis_u_ = axis_v_.Cross(center_);  // Right-handed: u x v = center.
}

PlanePoint Gnomonic::Forward(const Vec3& point, bool* ok) const {
  const Vec3 p = point.Normalized();
  const double d = p.Dot(center_);
  // cos(89.9 deg) ~= 1.745e-3; beyond that the plane coordinates exceed
  // ~573 Earth radii and are numerically useless.
  if (d < 1.8e-3) {
    if (ok != nullptr) *ok = false;
    return {};
  }
  if (ok != nullptr) *ok = true;
  const Vec3 scaled = p * (1.0 / d);  // Intersection with tangent plane.
  const Vec3 offset = scaled - center_;
  return {offset.Dot(axis_u_), offset.Dot(axis_v_)};
}

Vec3 Gnomonic::Inverse(const PlanePoint& p) const {
  const Vec3 on_plane = center_ + axis_u_ * p.u + axis_v_ * p.v;
  return on_plane.Normalized();
}

}  // namespace pol::geo
