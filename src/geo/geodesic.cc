#include "geo/geodesic.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace pol::geo {

double HaversineKm(const LatLng& a, const LatLng& b) {
  const double lat1 = a.lat_rad();
  const double lat2 = b.lat_rad();
  const double dlat = lat2 - lat1;
  const double dlng = b.lng_rad() - a.lng_rad();
  const double sin_dlat = std::sin(dlat / 2.0);
  const double sin_dlng = std::sin(dlng / 2.0);
  const double h = sin_dlat * sin_dlat +
                   std::cos(lat1) * std::cos(lat2) * sin_dlng * sin_dlng;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double DistanceNm(const LatLng& a, const LatLng& b) {
  return HaversineKm(a, b) / kKmPerNauticalMile;
}

double InitialBearingDeg(const LatLng& a, const LatLng& b) {
  const double lat1 = a.lat_rad();
  const double lat2 = b.lat_rad();
  const double dlng = b.lng_rad() - a.lng_rad();
  const double y = std::sin(dlng) * std::cos(lat2);
  const double x = std::cos(lat1) * std::sin(lat2) -
                   std::sin(lat1) * std::cos(lat2) * std::cos(dlng);
  // NOLINTNEXTLINE(pollint:float-compare): exact-zero guard for atan2 poles.
  if (x == 0.0 && y == 0.0) return 0.0;
  double bearing = RadToDeg(std::atan2(y, x));
  if (bearing < 0.0) bearing += 360.0;
  if (bearing >= 360.0) bearing -= 360.0;
  return bearing;
}

LatLng DestinationPoint(const LatLng& origin, double bearing_deg,
                        double distance_km) {
  const double delta = distance_km / kEarthRadiusKm;
  const double theta = DegToRad(bearing_deg);
  const double lat1 = origin.lat_rad();
  const double lng1 = origin.lng_rad();
  const double sin_lat2 = std::sin(lat1) * std::cos(delta) +
                          std::cos(lat1) * std::sin(delta) * std::cos(theta);
  const double lat2 = std::asin(std::clamp(sin_lat2, -1.0, 1.0));
  const double y = std::sin(theta) * std::sin(delta) * std::cos(lat1);
  const double x = std::cos(delta) - std::sin(lat1) * sin_lat2;
  const double lng2 = lng1 + std::atan2(y, x);
  return LatLng{RadToDeg(lat2), RadToDeg(lng2)}.Normalized();
}

LatLng Interpolate(const LatLng& a, const LatLng& b, double t) {
  const Vec3 va = LatLngToVec3(a);
  const Vec3 vb = LatLngToVec3(b);
  const double omega = AngleBetween(va, vb);
  if (omega < 1e-12) return a;
  const double sin_omega = std::sin(omega);
  const double wa = std::sin((1.0 - t) * omega) / sin_omega;
  const double wb = std::sin(t * omega) / sin_omega;
  return Vec3ToLatLng(va * wa + vb * wb);
}

std::vector<LatLng> SampleGreatCircle(const LatLng& a, const LatLng& b,
                                      double step_km) {
  const double total_km = HaversineKm(a, b);
  std::vector<LatLng> points;
  if (total_km < 1e-9) {
    points.push_back(a);
    return points;
  }
  const int segments =
      std::max(1, static_cast<int>(std::ceil(total_km / step_km)));
  points.reserve(static_cast<size_t>(segments) + 1);
  for (int i = 0; i <= segments; ++i) {
    points.push_back(Interpolate(a, b, static_cast<double>(i) / segments));
  }
  return points;
}

double CrossTrackKm(const LatLng& a, const LatLng& b, const LatLng& p) {
  const Vec3 va = LatLngToVec3(a);
  const Vec3 vb = LatLngToVec3(b);
  const Vec3 vp = LatLngToVec3(p);
  const Vec3 normal = va.Cross(vb);
  const double n = normal.Norm();
  if (n < 1e-15) return 0.0;  // Degenerate great circle.
  const double sin_xt = std::clamp(vp.Dot(normal) / n, -1.0, 1.0);
  return std::asin(sin_xt) * kEarthRadiusKm;
}

double ImpliedSpeedKnots(const LatLng& from, const LatLng& to,
                         double elapsed_seconds) {
  if (elapsed_seconds <= 0.0) return 0.0;
  const double nm = DistanceNm(from, to);
  return nm / (elapsed_seconds / 3600.0);
}

double AngularDifferenceDeg(double a_deg, double b_deg) {
  double diff = std::fmod(std::fabs(a_deg - b_deg), 360.0);
  if (diff > 180.0) diff = 360.0 - diff;
  return diff;
}

}  // namespace pol::geo
