#ifndef POL_GEO_GEODESIC_H_
#define POL_GEO_GEODESIC_H_

#include <vector>

#include "geo/latlng.h"

// Great-circle geometry on the authalic sphere: the kinematic checks of
// the cleaning stage (haversine speed filter, paper §3.3.1), the
// simulator's vessel movement, and the hex grid's metric all use these.

namespace pol::geo {

// Great-circle distance in kilometres (haversine formula).
double HaversineKm(const LatLng& a, const LatLng& b);

// Distance in nautical miles.
double DistanceNm(const LatLng& a, const LatLng& b);

// Initial bearing from `a` to `b`, degrees clockwise from true north in
// [0, 360). Undefined (returns 0) when the points coincide.
double InitialBearingDeg(const LatLng& a, const LatLng& b);

// The point reached by travelling `distance_km` from `origin` along the
// given initial bearing.
LatLng DestinationPoint(const LatLng& origin, double bearing_deg,
                        double distance_km);

// Point at fraction `t` in [0,1] along the great circle from `a` to `b`
// (spherical linear interpolation).
LatLng Interpolate(const LatLng& a, const LatLng& b, double t);

// Samples the great circle from `a` to `b` every `step_km` (inclusive of
// both endpoints). Returns at least two points for distinct endpoints.
std::vector<LatLng> SampleGreatCircle(const LatLng& a, const LatLng& b,
                                      double step_km);

// Signed cross-track distance (km) of `p` from the great circle through
// `a` -> `b`; positive to the left of the direction of travel.
double CrossTrackKm(const LatLng& a, const LatLng& b, const LatLng& p);

// Speed in knots implied by moving between two timed positions. Returns 0
// for non-positive elapsed time.
double ImpliedSpeedKnots(const LatLng& from, const LatLng& to,
                         double elapsed_seconds);

// Absolute angular difference of two headings/courses in degrees, in
// [0, 180].
double AngularDifferenceDeg(double a_deg, double b_deg);

}  // namespace pol::geo

#endif  // POL_GEO_GEODESIC_H_
