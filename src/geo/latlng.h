#ifndef POL_GEO_LATLNG_H_
#define POL_GEO_LATLNG_H_

#include <cmath>
#include <string>

// Geographic coordinate types shared by the grid, the simulator and the
// pipeline. All angles at API boundaries are degrees; internal spherical
// trigonometry uses radians. The Earth is modelled as a sphere with the
// authalic radius, which is the convention of discrete global grid
// systems (cell areas are quoted on the authalic sphere).

namespace pol::geo {

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kDegToRad = kPi / 180.0;
inline constexpr double kRadToDeg = 180.0 / kPi;

// Authalic Earth radius in kilometres (sphere of equal area to WGS84).
inline constexpr double kEarthRadiusKm = 6371.0072;

// Total surface area of the authalic sphere, km^2.
inline constexpr double kEarthAreaKm2 =
    4.0 * kPi * kEarthRadiusKm * kEarthRadiusKm;

// Nautical miles per kilometre.
inline constexpr double kKmPerNauticalMile = 1.852;

inline double DegToRad(double deg) { return deg * kDegToRad; }
inline double RadToDeg(double rad) { return rad * kRadToDeg; }

// A point on the sphere in degrees. Latitude in [-90, 90], longitude in
// [-180, 180). Construction does not normalize; call Normalized() when
// the inputs may be out of range.
struct LatLng {
  double lat_deg = 0.0;
  double lng_deg = 0.0;

  constexpr LatLng() = default;
  constexpr LatLng(double lat, double lng) : lat_deg(lat), lng_deg(lng) {}

  double lat_rad() const { return DegToRad(lat_deg); }
  double lng_rad() const { return DegToRad(lng_deg); }

  // True when latitude and longitude are within protocol bounds.
  bool IsValid() const {
    return std::isfinite(lat_deg) && std::isfinite(lng_deg) &&
           lat_deg >= -90.0 && lat_deg <= 90.0 && lng_deg >= -180.0 &&
           lng_deg <= 180.0;
  }

  // Returns a copy with longitude wrapped to [-180, 180) and latitude
  // clamped to [-90, 90].
  LatLng Normalized() const;

  std::string ToString() const;
};

inline bool operator==(const LatLng& a, const LatLng& b) {
  return a.lat_deg == b.lat_deg && a.lng_deg == b.lng_deg;
}

// A unit vector on the sphere; the internal representation used by the
// icosahedral grid math.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double px, double py, double pz) : x(px), y(py), z(pz) {}

  double Dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  Vec3 Cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double Norm() const { return std::sqrt(Dot(*this)); }
  Vec3 Normalized() const {
    const double n = Norm();
    return {x / n, y / n, z / n};
  }
  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
};

// Conversions between geographic and Cartesian unit-sphere coordinates.
Vec3 LatLngToVec3(const LatLng& p);
LatLng Vec3ToLatLng(const Vec3& v);

// Angle between two unit vectors, radians (numerically stable near 0/pi).
double AngleBetween(const Vec3& a, const Vec3& b);

}  // namespace pol::geo

#endif  // POL_GEO_LATLNG_H_
