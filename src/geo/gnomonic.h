#ifndef POL_GEO_GNOMONIC_H_
#define POL_GEO_GNOMONIC_H_

#include "geo/latlng.h"

// Gnomonic (central) projection onto the tangent plane at a given centre.
//
// The hexagonal grid lays a planar lattice on each icosahedron face; the
// gnomonic projection is the canonical face projection for such grids
// (great circles map to straight lines, so lattice axes stay straight).
// Distortion grows with distance from the centre, which is why the grid
// uses twenty faces rather than one plane.

namespace pol::geo {

// A 2D point in the tangent plane, in units of Earth radii.
struct PlanePoint {
  double u = 0.0;
  double v = 0.0;
};

class Gnomonic {
 public:
  // `center` is the tangent point. `reference_up` fixes the plane's +v
  // axis: it is the projection of this direction onto the tangent plane.
  // `reference_up` must not be (anti)parallel to `center`.
  Gnomonic(const Vec3& center, const Vec3& reference_up);

  // Projects a unit vector. Points on the hemisphere opposite the centre
  // have no gnomonic image; `ok` is set false for them (and for points
  // more than ~89.9 degrees away, where the projection blows up).
  PlanePoint Forward(const Vec3& point, bool* ok = nullptr) const;

  // Inverse projection back to a unit vector on the sphere.
  Vec3 Inverse(const PlanePoint& p) const;

  const Vec3& center() const { return center_; }

 private:
  Vec3 center_;  // Unit normal of the tangent plane.
  Vec3 axis_u_;  // Unit vector of the +u direction (in the plane).
  Vec3 axis_v_;  // Unit vector of the +v direction (in the plane).
};

}  // namespace pol::geo

#endif  // POL_GEO_GNOMONIC_H_
