#include "common/failpoint.h"

#include <string>
#include <string_view>
#include <vector>

namespace pol {
namespace {

// SplitMix64: the per-hit coin. Statelesly mixes (seed, hit) so firing
// decisions are independent of evaluation interleaving across threads.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool CoinFires(double probability, uint64_t seed, uint64_t hit) {
  if (probability >= 1.0) return true;
  if (probability <= 0.0) return false;
  // Top 53 bits -> uniform double in [0, 1).
  const double u =
      static_cast<double>(Mix64(seed ^ Mix64(hit)) >> 11) * 0x1.0p-53;
  return u < probability;
}

}  // namespace

FailPointRegistry& FailPointRegistry::Global() {
  static FailPointRegistry* const kRegistry =
      new FailPointRegistry();  // NOLINT(pollint:naked-new): process-lifetime singleton.
  return *kRegistry;
}

void FailPointRegistry::Arm(std::string_view name, FailPointSpec spec) {
  MutexLock lock(mutex_);
  Point& point = points_[std::string(name)];
  point.armed = true;
  point.spec = std::move(spec);
}

void FailPointRegistry::Disarm(std::string_view name) {
  MutexLock lock(mutex_);
  const auto it = points_.find(name);
  if (it != points_.end()) it->second.armed = false;
}

void FailPointRegistry::DisarmAll() {
  MutexLock lock(mutex_);
  for (auto& [name, point] : points_) point.armed = false;
}

void FailPointRegistry::Reset() {
  MutexLock lock(mutex_);
  points_.clear();
}

Status FailPointRegistry::Evaluate(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_.emplace(std::string(name), Point()).first;
  }
  Point& point = it->second;
  const uint64_t hit = point.hits++;
  if (!point.armed) return Status::OK();
  const FailPointSpec& spec = point.spec;
  if (hit < spec.fire_from) return Status::OK();
  if (spec.fire_count != FailPointSpec::kForever &&
      hit - spec.fire_from >= spec.fire_count) {
    return Status::OK();
  }
  if (!CoinFires(spec.probability, spec.seed, hit)) return Status::OK();
  std::string message = spec.message;
  if (message.empty()) {
    message = "fail point " + std::string(name) + " fired (hit " +
              std::to_string(hit) + ")";
  }
  return Status(spec.code, std::move(message));
}

uint64_t FailPointRegistry::HitCount(std::string_view name) const {
  MutexLock lock(mutex_);
  const auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.hits;
}

std::vector<std::string> FailPointRegistry::KnownPoints() const {
  MutexLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, point] : points_) names.push_back(name);
  return names;
}

}  // namespace pol
