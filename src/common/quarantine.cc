#include "common/quarantine.h"

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace pol {

namespace {
constexpr size_t kMaxPayloadBytes = 256;
}  // namespace

void QuarantineStore::Record(std::string_view source, const Status& status,
                             std::string_view payload, uint64_t sequence) {
  if constexpr (obs::kEnabled) {
    // Dead letters are rare, so the per-source name lookup is fine here.
    auto& registry = obs::Registry::Global();
    registry.counter("quarantine.dead_letters")->Increment();
    registry.counter("quarantine." + std::string(source) + ".dead_letters")
        ->Increment();
  }
  MutexLock lock(mutex_);
  ++counters_[{std::string(source), status.code()}];
  if (letters_.size() >= max_retained_) return;
  DeadLetter letter;
  letter.source = std::string(source);
  letter.status = status;
  letter.payload = std::string(payload.substr(0, kMaxPayloadBytes));
  letter.sequence = sequence;
  letters_.push_back(std::move(letter));
}

uint64_t QuarantineStore::total() const {
  MutexLock lock(mutex_);
  uint64_t total = 0;
  for (const auto& [key, count] : counters_) total += count;
  return total;
}

uint64_t QuarantineStore::CountForSource(std::string_view source) const {
  MutexLock lock(mutex_);
  uint64_t total = 0;
  for (const auto& [key, count] : counters_) {
    if (key.first == source) total += count;
  }
  return total;
}

std::map<std::pair<std::string, StatusCode>, uint64_t>
QuarantineStore::Counters() const {
  MutexLock lock(mutex_);
  return counters_;
}

std::vector<DeadLetter> QuarantineStore::Letters() const {
  MutexLock lock(mutex_);
  return letters_;
}

std::string QuarantineStore::CountersToString() const {
  MutexLock lock(mutex_);
  std::string out;
  for (const auto& [key, count] : counters_) {
    out += key.first;
    out += '/';
    out += std::string(StatusCodeName(key.second));
    out += ": ";
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

}  // namespace pol
