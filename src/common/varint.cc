#include "common/varint.h"

#include <cstring>
#include <string>
#include <string_view>

namespace pol {

void PutVarint64(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

void PutVarintSigned64(std::string* out, int64_t value) {
  PutVarint64(out, ZigZagEncode(value));
}

Status GetVarint64(std::string_view* input, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  size_t i = 0;
  for (; i < input->size() && shift <= 63; ++i, shift += 7) {
    const uint8_t byte = static_cast<uint8_t>((*input)[i]);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      input->remove_prefix(i + 1);
      *value = result;
      return Status::OK();
    }
  }
  return shift > 63 ? Status::Corruption("varint too long")
                    : Status::Corruption("truncated varint");
}

Status GetVarintSigned64(std::string_view* input, int64_t* value) {
  uint64_t raw = 0;
  POL_RETURN_IF_ERROR(GetVarint64(input, &raw));
  *value = ZigZagDecode(raw);
  return Status::OK();
}

void PutDouble(std::string* out, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
}

Status GetDouble(std::string_view* input, double* value) {
  if (input->size() < 8) return Status::Corruption("truncated double");
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(static_cast<uint8_t>((*input)[i])) << (8 * i);
  }
  std::memcpy(value, &bits, sizeof(bits));
  input->remove_prefix(8);
  return Status::OK();
}

void PutLengthPrefixed(std::string* out, std::string_view value) {
  PutVarint64(out, value.size());
  out->append(value.data(), value.size());
}

Status GetLengthPrefixed(std::string_view* input, std::string_view* value) {
  uint64_t len = 0;
  POL_RETURN_IF_ERROR(GetVarint64(input, &len));
  if (input->size() < len) return Status::Corruption("truncated string");
  *value = input->substr(0, len);
  input->remove_prefix(len);
  return Status::OK();
}

}  // namespace pol
