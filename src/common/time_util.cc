#include "common/time_util.h"

#include <cstdio>
#include <string>

namespace pol {
namespace {

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static constexpr int kDays[12] = {31, 28, 31, 30, 31, 30,
                                    31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

// Days since 1970-01-01 for a UTC calendar date.
int64_t DaysFromCivil(int year, int month, int day) {
  // Howard Hinnant's algorithm, restricted to the int64 range we need.
  year -= month <= 2;
  const int64_t era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(month + (month > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(day) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

}  // namespace

std::string FormatDuration(int64_t seconds) {
  const bool negative = seconds < 0;
  if (negative) seconds = -seconds;
  const int64_t days = seconds / kSecondsPerDay;
  const int64_t hours = (seconds % kSecondsPerDay) / kSecondsPerHour;
  const int64_t minutes = (seconds % kSecondsPerHour) / kSecondsPerMinute;
  const int64_t secs = seconds % kSecondsPerMinute;
  char buf[64];
  if (days > 0) {
    std::snprintf(buf, sizeof(buf), "%s%lldd %02lldh %02lldm",
                  negative ? "-" : "", static_cast<long long>(days),
                  static_cast<long long>(hours),
                  static_cast<long long>(minutes));
  } else if (hours > 0) {
    std::snprintf(buf, sizeof(buf), "%s%02lldh %02lldm", negative ? "-" : "",
                  static_cast<long long>(hours),
                  static_cast<long long>(minutes));
  } else {
    std::snprintf(buf, sizeof(buf), "%s%02lldm %02llds", negative ? "-" : "",
                  static_cast<long long>(minutes),
                  static_cast<long long>(secs));
  }
  return buf;
}

std::string FormatUnixSeconds(UnixSeconds t) {
  // Convert days-since-epoch back to a civil date (inverse of
  // DaysFromCivil), then append the time of day.
  int64_t days = t / kSecondsPerDay;
  int64_t rem = t % kSecondsPerDay;
  if (rem < 0) {
    rem += kSecondsPerDay;
    days -= 1;
  }
  int64_t z = days + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : static_cast<unsigned>(-9));
  const int64_t year = y + (m <= 2);

  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04lld-%02u-%02u %02lld:%02lld:%02lld",
                static_cast<long long>(year), m, d,
                static_cast<long long>(rem / kSecondsPerHour),
                static_cast<long long>((rem % kSecondsPerHour) / 60),
                static_cast<long long>(rem % 60));
  return buf;
}

UnixSeconds UnixFromUtc(int year, int month, int day, int hour, int minute,
                        int second) {
  // Clamp nonsensical calendar inputs instead of failing: callers build
  // timestamps from validated simulation schedules.
  if (month < 1) month = 1;
  if (month > 12) month = 12;
  if (day < 1) day = 1;
  if (day > DaysInMonth(year, month)) day = DaysInMonth(year, month);
  return DaysFromCivil(year, month, day) * kSecondsPerDay +
         hour * kSecondsPerHour + minute * kSecondsPerMinute + second;
}

}  // namespace pol
