#ifndef POL_COMMON_TIME_UTIL_H_
#define POL_COMMON_TIME_UTIL_H_

#include <cstdint>
#include <string>

// Time representation used throughout the library.
//
// AIS archives timestamp each received message; the paper's features (ETO,
// ATA) are second-granularity durations. We use plain Unix seconds in
// int64 rather than std::chrono types at module boundaries to keep the
// serialized formats and the flow-engine records trivially copyable.

namespace pol {

// Seconds since the Unix epoch (UTC).
using UnixSeconds = int64_t;

constexpr int64_t kSecondsPerMinute = 60;
constexpr int64_t kSecondsPerHour = 3600;
constexpr int64_t kSecondsPerDay = 86400;

// Formats a duration as "3d 04h 25m" / "04h 25m" / "25m 10s".
std::string FormatDuration(int64_t seconds);

// Formats Unix seconds as "YYYY-MM-DD hh:mm:ss" UTC.
std::string FormatUnixSeconds(UnixSeconds t);

// Builds a Unix timestamp from a UTC calendar date. Months/days 1-based.
UnixSeconds UnixFromUtc(int year, int month, int day, int hour = 0,
                        int minute = 0, int second = 0);

}  // namespace pol

#endif  // POL_COMMON_TIME_UTIL_H_
