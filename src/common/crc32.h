#ifndef POL_COMMON_CRC32_H_
#define POL_COMMON_CRC32_H_

#include <cstdint>
#include <string_view>

// CRC-32 (IEEE 802.3 polynomial, reflected). Used to checksum inventory
// file blocks so corruption is detected on load.

namespace pol {

// Computes the CRC of `data`, optionally continuing from a prior value.
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

}  // namespace pol

#endif  // POL_COMMON_CRC32_H_
