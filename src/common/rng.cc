#include "common/rng.h"

#include <cmath>

namespace pol {

double Rng::Sqrt(double x) { return std::sqrt(x); }
double Rng::Log(double x) { return std::log(x); }

}  // namespace pol
