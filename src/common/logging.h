#ifndef POL_COMMON_LOGGING_H_
#define POL_COMMON_LOGGING_H_

#include <sstream>
#include <string>

// Minimal leveled logging for the library and its tools.
//
//   POL_LOG(INFO) << "loaded " << n << " ports";
//
// FATAL aborts the process after printing; the library otherwise
// reports errors via pol::Status, so logging is only for progress
// reporting and invariant violations. The invariant macros built on
// top of this live in common/check.h (POL_CHECK / POL_DCHECK).

namespace pol {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

// Messages below this level are discarded. Default: kInfo.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the level is disabled.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace pol

#define POL_LOG(severity)                                               \
  (::pol::LogLevel::k##severity < ::pol::MinLogLevel())                 \
      ? void(0)                                                         \
      : ::pol::internal_logging::Voidify() &                            \
            ::pol::internal_logging::LogMessage(                        \
                ::pol::LogLevel::k##severity, __FILE__, __LINE__)       \
                .stream()

namespace pol::internal_logging {
// Lowest-precedence operand that converts the stream expression to void.
struct Voidify {
  void operator&(std::ostream&) {}
};
}  // namespace pol::internal_logging

#endif  // POL_COMMON_LOGGING_H_
