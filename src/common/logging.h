#ifndef POL_COMMON_LOGGING_H_
#define POL_COMMON_LOGGING_H_

#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

// Minimal leveled logging for the library and its tools.
//
//   POL_LOG(INFO) << "loaded " << n << " ports";
//
// FATAL aborts the process after printing; the library otherwise
// reports errors via pol::Status, so logging is only for progress
// reporting and invariant violations. The invariant macros built on
// top of this live in common/check.h (POL_CHECK / POL_DCHECK).
//
// The minimum level starts from the POL_LOG_LEVEL environment variable
// when set ("debug" .. "fatal", or the numeric 0..4), and the emission
// path is pluggable: SetLogSink replaces the default stderr writer —
// tests capture output that way, and embedders can route it into their
// own logger. FATAL still aborts after the sink returns.

namespace pol {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

// Messages below this level are discarded. Default: kInfo, or
// POL_LOG_LEVEL when the environment sets a parseable level.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

// "debug"/"info"/"warning" (or "warn")/"error"/"fatal", any case, or a
// single digit 0..4; nullopt for anything else.
std::optional<LogLevel> ParseLogLevelName(std::string_view name);

// Re-reads POL_LOG_LEVEL and applies it when parseable (no-op
// otherwise). The first log statement does this automatically; tests
// that setenv() mid-process call it to pick up the change.
void InitLogLevelFromEnv();

// Receives every emitted message (one formatted line, no trailing
// newline). Must be callable from any thread.
using LogSink = std::function<void(LogLevel, std::string_view)>;

// Replaces the process-wide sink and returns the previous one; an
// empty sink restores the stderr default.
LogSink SetLogSink(LogSink sink);

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the level is disabled.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace pol

#define POL_LOG(severity)                                               \
  (::pol::LogLevel::k##severity < ::pol::MinLogLevel())                 \
      ? void(0)                                                         \
      : ::pol::internal_logging::Voidify() &                            \
            ::pol::internal_logging::LogMessage(                        \
                ::pol::LogLevel::k##severity, __FILE__, __LINE__)       \
                .stream()

namespace pol::internal_logging {
// Lowest-precedence operand that converts the stream expression to void.
struct Voidify {
  void operator&(std::ostream&) {}
};
}  // namespace pol::internal_logging

#endif  // POL_COMMON_LOGGING_H_
