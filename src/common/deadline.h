#ifndef POL_COMMON_DEADLINE_H_
#define POL_COMMON_DEADLINE_H_

#include <limits>

#include "obs/clock.h"

// The per-call completion bound of the serving layer: a Deadline is an
// absolute instant on the obs monotonic clock (obs::NowSeconds(), one
// timing authority for the whole library — see DESIGN.md §3.4) by
// which a query must finish. Deadlines are plain values — copy them
// into closures freely; an infinite deadline never expires, and
// Expired() short-circuits before the clock read for it, so unbounded
// callers pay one predictable branch rather than a clock_gettime on
// every poll (bench_serving_guard's 2% bar counts on this).
//
// Long scans check cooperatively: the serving guard
// (core/serving_guard.h) polls Expired() every few hundred summaries
// and converts an expired deadline into StatusCode::kDeadlineExceeded
// instead of running unbounded.

namespace pol {

class Deadline {
 public:
  // Default-constructed deadlines never expire.
  Deadline() : at_seconds_(kInfiniteSeconds) {}

  static Deadline Infinite() { return Deadline(); }

  // Expires `seconds` from now (clamped so a negative budget is
  // already expired, not a deadline in the distant past wrapping).
  static Deadline AfterSeconds(double seconds) {
    return Deadline(obs::NowSeconds() + seconds);
  }

  // Expires at an absolute obs::NowSeconds() instant.
  static Deadline AtSeconds(double monotonic_seconds) {
    return Deadline(monotonic_seconds);
  }

  bool is_infinite() const { return at_seconds_ >= kInfiniteSeconds; }

  // The absolute expiry instant (+inf when infinite).
  double at_seconds() const { return at_seconds_; }

  bool Expired() const {
    return !is_infinite() && ExpiredAt(obs::NowSeconds());
  }
  bool ExpiredAt(double now_seconds) const {
    return now_seconds >= at_seconds_;
  }

  // Budget left (+inf when infinite, <= 0 when expired). The *At forms
  // let a caller that already read the clock avoid a second read.
  double RemainingSeconds() const {
    return RemainingSecondsAt(obs::NowSeconds());
  }
  double RemainingSecondsAt(double now_seconds) const {
    return at_seconds_ - now_seconds;
  }

 private:
  static constexpr double kInfiniteSeconds =
      std::numeric_limits<double>::infinity();

  explicit Deadline(double at_seconds) : at_seconds_(at_seconds) {}

  double at_seconds_;
};

}  // namespace pol

#endif  // POL_COMMON_DEADLINE_H_
