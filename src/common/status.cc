#include "common/status.h"

#include <optional>
#include <string>
#include <string_view>

namespace pol {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::optional<StatusCode> StatusCodeFromName(std::string_view name) {
  constexpr StatusCode kCodes[] = {
      StatusCode::kOk,            StatusCode::kInvalidArgument,
      StatusCode::kOutOfRange,    StatusCode::kNotFound,
      StatusCode::kAlreadyExists, StatusCode::kCorruption,
      StatusCode::kIoError,       StatusCode::kFailedPrecondition,
      StatusCode::kUnimplemented, StatusCode::kInternal,
      StatusCode::kDeadlineExceeded, StatusCode::kResourceExhausted,
      StatusCode::kUnavailable,      StatusCode::kDataLoss,
  };
  for (const StatusCode code : kCodes) {
    if (StatusCodeName(code) == name) return code;
  }
  return std::nullopt;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace pol
