#ifndef POL_COMMON_THREAD_ANNOTATIONS_H_
#define POL_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety annotations (see DESIGN.md §3.6). These macros
// let the compiler prove lock discipline at build time: a field marked
// POL_GUARDED_BY(mu_) may only be touched while mu_ is held, and the
// `analyze` CMake preset (-Wthread-safety -Werror, Clang only) turns
// any violation into a compile error — races TSan can only catch when
// a test happens to interleave them.
//
// Under non-Clang compilers every macro expands to nothing, so the
// annotated tree builds identically under GCC. The annotations attach
// to the capability types in common/mutex.h (pol::Mutex, pol::MutexLock,
// pol::CondVar); raw std::mutex is banned in src/ by the pollint
// `mutex-annotation` rule because libstdc++'s mutex carries no
// capability attribute the analysis could see.
//
// This header is macro-only and include-free on purpose: it is assigned
// to the `base` layer in tools/pollint/layers.txt so even src/obs (the
// otherwise dependency-free bottom layer) may include it.

#if defined(__clang__)
#define POL_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define POL_THREAD_ANNOTATION_ATTRIBUTE_(x)  // No-op off Clang.
#endif

// Type annotations: a class that is a lock ("capability") or an RAII
// scope that holds one.
#define POL_CAPABILITY(x) POL_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))
#define POL_SCOPED_CAPABILITY POL_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

// Data annotations: the mutex that must be held to touch a field (or,
// for pointers, the pointed-to data).
#define POL_GUARDED_BY(x) POL_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))
#define POL_PT_GUARDED_BY(x) POL_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

// Function annotations: locks required on entry, acquired, released,
// or forbidden (deadlock avoidance) by a call.
#define POL_REQUIRES(...) \
  POL_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))
#define POL_REQUIRES_SHARED(...) \
  POL_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))
#define POL_ACQUIRE(...) \
  POL_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define POL_ACQUIRE_SHARED(...) \
  POL_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))
#define POL_RELEASE(...) \
  POL_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))
#define POL_RELEASE_SHARED(...) \
  POL_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))
#define POL_TRY_ACQUIRE(...) \
  POL_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))
#define POL_EXCLUDES(...) \
  POL_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

// Lock ordering documentation, checked when both locks are annotated.
#define POL_ACQUIRED_BEFORE(...) \
  POL_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))
#define POL_ACQUIRED_AFTER(...) \
  POL_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))

// A function that returns a reference to the capability guarding its
// class (accessor pattern).
#define POL_RETURN_CAPABILITY(x) \
  POL_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

// Escape hatch for code the analysis cannot follow (documented at each
// use; see DESIGN.md §3.6 for when it is acceptable).
#define POL_NO_THREAD_SAFETY_ANALYSIS \
  POL_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // POL_COMMON_THREAD_ANNOTATIONS_H_
