#ifndef POL_COMMON_STATUS_H_
#define POL_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/check.h"

// Status / Result error handling for the Patterns-of-Life library.
//
// The library does not use C++ exceptions (Google style; Arrow/RocksDB
// idiom). Fallible operations return `pol::Status`, or `pol::Result<T>`
// when they produce a value. Success is the common case and is cheap: an
// OK Status carries no allocation.

namespace pol {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kCorruption = 5,
  kIoError = 6,
  kFailedPrecondition = 7,
  kUnimplemented = 8,
  kInternal = 9,
  // Serving-side codes (see core/serving_guard.h): a call ran out of
  // its deadline budget, was shed by admission control, or was refused
  // because the store is degraded (refresh circuit breaker open).
  kDeadlineExceeded = 10,
  kResourceExhausted = 11,
  kUnavailable = 12,
  // Durable data is unrecoverably damaged: a snapshot-store file failed
  // magic/CRC/framing validation (see store/snapshot_format.h). Unlike
  // kCorruption — which flags a flaky read worth retrying — kDataLoss
  // means retrying the same bytes will fail identically; recovery is
  // falling back to an older generation, not a retry.
  kDataLoss = 13,
};

// Highest valid StatusCode value; serialized codes above this are
// corrupt (checkpoint decode uses this bound).
inline constexpr StatusCode kMaxStatusCode = StatusCode::kDataLoss;

// Human-readable name of a status code, e.g. "InvalidArgument".
std::string_view StatusCodeName(StatusCode code);

// Inverse of StatusCodeName: parses "InvalidArgument" back to its code.
// Round-trips every StatusCode; nullopt for unrecognized names.
std::optional<StatusCode> StatusCodeFromName(std::string_view name);

// A lightweight error carrier: a code plus an optional message.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Whether retrying the failed operation can plausibly succeed: true
  // for transient infrastructure faults (I/O errors, corruption seen on
  // a flaky read, internal faults — the codes fail points inject — plus
  // shed load and a temporarily unavailable store), false for caller
  // errors that will fail identically on every attempt (invalid
  // arguments, failed preconditions, exhausted deadlines, ...). This is
  // the one retryability authority: flow::StageRunner's retry loop and
  // the serving-side refresh circuit breaker (core/serving_guard.h)
  // both consult it.
  bool IsRetryable() const { return StatusCodeIsRetryable(code_); }

  static bool StatusCodeIsRetryable(StatusCode code) {
    switch (code) {
      case StatusCode::kCorruption:
      case StatusCode::kIoError:
      case StatusCode::kInternal:
      case StatusCode::kResourceExhausted:
      case StatusCode::kUnavailable:
        return true;
      default:
        return false;
    }
  }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> is either a value or an error Status. Access to the value of
// an errored result aborts in debug builds and is undefined otherwise;
// callers must check `ok()` first.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both
  // work inside functions returning Result<T>.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {      // NOLINT
    // An OK status without a value would make the Result unusable.
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    POL_DCHECK(ok()) << "value() on errored Result";
    return *value_;
  }
  T& value() & {
    POL_DCHECK(ok()) << "value() on errored Result";
    return *value_;
  }
  T&& value() && {
    POL_DCHECK(ok()) << "value() on errored Result";
    return *std::move(value_);
  }

  const T& operator*() const& {
    POL_DCHECK(ok()) << "deref of errored Result";
    return *value_;
  }
  T& operator*() & {
    POL_DCHECK(ok()) << "deref of errored Result";
    return *value_;
  }
  const T* operator->() const {
    POL_DCHECK(ok()) << "deref of errored Result";
    return &*value_;
  }
  T* operator->() {
    POL_DCHECK(ok()) << "deref of errored Result";
    return &*value_;
  }

  // Returns the value, or `fallback` when errored.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;  // Engaged exactly when status_ is OK.
};

}  // namespace pol

// Propagates a non-OK Status from an expression, Arrow-style.
#define POL_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::pol::Status _pol_status = (expr);      \
    if (!_pol_status.ok()) return _pol_status; \
  } while (false)

// Evaluates a Result-returning expression, assigning the value to `lhs`
// on success and propagating the Status on error.
#define POL_ASSIGN_OR_RETURN(lhs, expr)          \
  auto POL_CONCAT_(_pol_result, __LINE__) = (expr); \
  if (!POL_CONCAT_(_pol_result, __LINE__).ok())     \
    return POL_CONCAT_(_pol_result, __LINE__).status(); \
  lhs = std::move(POL_CONCAT_(_pol_result, __LINE__)).value()

#define POL_CONCAT_INNER_(a, b) a##b
#define POL_CONCAT_(a, b) POL_CONCAT_INNER_(a, b)

#endif  // POL_COMMON_STATUS_H_
