#ifndef POL_COMMON_RNG_H_
#define POL_COMMON_RNG_H_

#include <cstdint>

// Deterministic pseudo-random number generation.
//
// Simulation and property tests must be reproducible across platforms and
// standard-library versions, so we use our own generators rather than
// <random> distributions (whose outputs are implementation-defined).

namespace pol {

// SplitMix64: used to seed Xoshiro and for cheap hashing of seeds.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256**: fast, high-quality 64-bit generator (Blackman & Vigna).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  uint64_t NextUint64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform integer in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n) {
    // Rejection-free modulo bias is negligible for n << 2^64; use Lemire's
    // multiply-shift reduction for speed and near-uniformity.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(NextUint64()) * n) >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Standard normal via Marsaglia polar method.
  double NextGaussian() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * NextDouble() - 1.0;
      v = 2.0 * NextDouble() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);  // NOLINT(pollint:float-compare): exact-zero rejection.
    const double mul = Sqrt(-2.0 * Log(s) / s);
    spare_ = v * mul;
    has_spare_ = true;
    return u * mul;
  }

  // Returns true with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Exponential with the given rate (mean 1/rate).
  double Exponential(double rate) { return -Log(1.0 - NextDouble()) / rate; }

  // Forks an independent generator; deterministic given this RNG's state.
  Rng Fork() { return Rng(NextUint64()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  // Thin wrappers avoid including <cmath> in this widely-included header.
  static double Sqrt(double x);
  static double Log(double x);

  uint64_t s_[4] = {};
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace pol

#endif  // POL_COMMON_RNG_H_
