#include "common/crc32.h"

#include <array>
#include <string_view>

namespace pol {
namespace {

constexpr uint32_t kPolynomial = 0xedb88320u;

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (kPolynomial ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = MakeTable();
  uint32_t c = seed ^ 0xffffffffu;
  for (const char ch : data) {
    c = kTable[(c ^ static_cast<uint8_t>(ch)) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace pol
