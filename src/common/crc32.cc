#include "common/crc32.h"

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace pol {
namespace {

constexpr uint32_t kPolynomial = 0xedb88320u;

// Slice-by-8: table[0] is the classic bytewise table; table[s] maps a
// byte that is s positions further from the end of the message, so
// eight bytes fold into the CRC with eight independent lookups per
// iteration instead of an 8-deep dependency chain. Same polynomial,
// same results — only the schedule changes.
std::array<std::array<uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (kPolynomial ^ (c >> 1)) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables[0][i];
    for (size_t s = 1; s < 8; ++s) {
      c = tables[0][c & 0xff] ^ (c >> 8);
      tables[s][i] = c;
    }
  }
  return tables;
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  static const std::array<std::array<uint32_t, 256>, 8> kTables =
      MakeTables();
  const auto& t = kTables;
  uint32_t c = seed ^ 0xffffffffu;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  // The word path folds two little-endian u32 loads per step; CRC over
  // a byte stream is endian-agnostic, but the XOR-into-a-load trick is
  // not, so big-endian hosts take the bytewise tail for everything.
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      uint32_t lo;
      uint32_t hi;
      std::memcpy(&lo, p, sizeof(lo));
      std::memcpy(&hi, p + 4, sizeof(hi));
      lo ^= c;
      c = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^
          t[5][(lo >> 16) & 0xff] ^ t[4][lo >> 24] ^ t[3][hi & 0xff] ^
          t[2][(hi >> 8) & 0xff] ^ t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
      p += 8;
      n -= 8;
    }
  }
  while (n-- > 0) {
    c = t[0][(c ^ *p++) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace pol
