#ifndef POL_COMMON_MUTEX_H_
#define POL_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

// The project's annotated locking vocabulary: pol::Mutex (a capability
// the Clang thread-safety analysis can track), pol::MutexLock (the RAII
// scope that acquires it) and pol::CondVar (a condition variable that
// waits on a Mutex directly). Every mutex in src/ is one of these —
// raw std::mutex carries no capability attribute under libstdc++, so
// the analysis could not connect locks to the POL_GUARDED_BY fields
// they protect (enforced by the pollint `mutex-annotation` rule).
//
// Usage:
//
//   class Counters {
//    public:
//     void Tick() {
//       MutexLock lock(mutex_);
//       ++count_;
//     }
//    private:
//     mutable Mutex mutex_;
//     int count_ POL_GUARDED_BY(mutex_) = 0;
//   };
//
// Condition waits are written as explicit while loops so the guarded
// predicate reads stay inside the locked (and analyzed) scope:
//
//   MutexLock lock(mutex_);
//   while (queue_.empty()) work_available_.Wait(mutex_);
//
// Like thread_annotations.h, this header is freestanding over the C++
// standard library only and is assigned to the `base` layer in
// tools/pollint/layers.txt, so src/obs may include it without growing
// a real dependency on common.

namespace pol {

// A std::mutex with the capability attribute the analysis needs.
// Satisfies Lockable, so the std lock adapters still work — but prefer
// MutexLock, which the analysis understands as a scoped acquire.
class POL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() POL_ACQUIRE() { mu_.lock(); }
  void unlock() POL_RELEASE() { mu_.unlock(); }
  bool try_lock() POL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// RAII lock scope over a Mutex (the std::lock_guard replacement the
// analysis can see through).
class POL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) POL_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() POL_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable that waits on a Mutex directly. Wait() atomically
// releases the mutex, blocks, and reacquires before returning; callers
// therefore hold the mutex across the whole wait loop as far as the
// analysis (and the program logic) is concerned. Spurious wakeups are
// possible — always wait in a while loop over the guarded predicate.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) POL_REQUIRES(mu) { cv_.wait(mu); }

  // Timed wait: blocks for at most `seconds` (non-positive waits return
  // immediately). Returns false on timeout, true when notified — but
  // spurious wakeups report true too, so callers treat the return value
  // as a hint and re-check both the guarded predicate and their own
  // clock, exactly as with Wait(). This is the deadline-wait vocabulary
  // the serving layer is held to (pollint `serving-wait` flags raw
  // condition variables and sleep-based waiting in src/core/serving*).
  bool WaitFor(Mutex& mu, double seconds) POL_REQUIRES(mu) {
    if (!(seconds > 0.0)) return false;
    return cv_.wait_for(mu, std::chrono::duration<double>(seconds)) ==
           std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // condition_variable_any waits on any Lockable — including Mutex
  // itself, which keeps the annotated type in the signature instead of
  // forcing an unannotated std::unique_lock through the call site.
  std::condition_variable_any cv_;
};

}  // namespace pol

#endif  // POL_COMMON_MUTEX_H_
