#ifndef POL_COMMON_VARINT_H_
#define POL_COMMON_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

// LEB128-style variable-length integer coding, used by the inventory's
// binary serialization format. Unsigned values use plain varint; signed
// values use zigzag coding so small magnitudes stay short.

namespace pol {

// Appends `value` to `*out` as a varint (1..10 bytes).
void PutVarint64(std::string* out, uint64_t value);

// Appends a zigzag-coded signed value.
void PutVarintSigned64(std::string* out, int64_t value);

// Reads a varint from the front of `*input`, advancing it past the
// consumed bytes. Returns Corruption on truncated or overlong input.
Status GetVarint64(std::string_view* input, uint64_t* value);

// Reads a zigzag-coded signed value.
Status GetVarintSigned64(std::string_view* input, int64_t* value);

// Appends a raw little-endian double (8 bytes).
void PutDouble(std::string* out, double value);
Status GetDouble(std::string_view* input, double* value);

// Appends a length-prefixed string.
void PutLengthPrefixed(std::string* out, std::string_view value);
Status GetLengthPrefixed(std::string_view* input, std::string_view* value);

inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace pol

#endif  // POL_COMMON_VARINT_H_
