#ifndef POL_COMMON_QUARANTINE_H_
#define POL_COMMON_QUARANTINE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

// A dead-letter store: the landing zone for inputs a fault-tolerant
// consumer refuses to process but must not silently drop. Producers
// (AIS ingest, the stage runner's chunk quarantine) record the failing
// payload together with the error that condemned it; the store keeps
// per-(source, reason) counters for coverage reporting plus a bounded
// sample of raw payloads for postmortems. Thread-safe; counting never
// saturates, only the retained samples are capped.

namespace pol {

// One condemned input.
struct DeadLetter {
  std::string source;   // Producer site, e.g. "nmea" or "stage.cleaning".
  Status status;        // Why it was condemned.
  std::string payload;  // The offending raw input (possibly truncated).
  uint64_t sequence = 0;  // Producer-assigned position (0 when unknown).
};

class QuarantineStore {
 public:
  // `max_retained` bounds the dead-letter samples kept in memory;
  // counters keep counting past the cap.
  explicit QuarantineStore(size_t max_retained = 128)
      : max_retained_(max_retained) {}

  // Records one condemned input. `payload` is stored (truncated to 256
  // bytes) only while the retention cap has room.
  void Record(std::string_view source, const Status& status,
              std::string_view payload = {}, uint64_t sequence = 0);

  // Total condemned inputs across all sources.
  uint64_t total() const;

  // Condemned inputs for one source.
  uint64_t CountForSource(std::string_view source) const;

  // Per-(source, reason) counters: ("nmea", kCorruption) -> n.
  std::map<std::pair<std::string, StatusCode>, uint64_t> Counters() const;

  // The retained dead letters, oldest first (at most `max_retained`).
  std::vector<DeadLetter> Letters() const;

  // Renders the counters as "source/CodeName: n" lines (reports, logs).
  std::string CountersToString() const;

 private:
  const size_t max_retained_;
  mutable Mutex mutex_;
  std::map<std::pair<std::string, StatusCode>, uint64_t> counters_
      POL_GUARDED_BY(mutex_);
  std::vector<DeadLetter> letters_ POL_GUARDED_BY(mutex_);
};

}  // namespace pol

#endif  // POL_COMMON_QUARANTINE_H_
