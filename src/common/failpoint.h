#ifndef POL_COMMON_FAILPOINT_H_
#define POL_COMMON_FAILPOINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

// Deterministic fault injection for the pipeline's failure-containment
// layer. A *fail point* is a named site in library code — stage
// boundaries, ingest, checkpoint I/O — that a test (or a chaos run) can
// *arm* to return an error Status at a chosen evaluation, after which
// the surrounding retry / quarantine / resume machinery must recover.
//
//   Status s = POL_FAILPOINT("checkpoint.write");
//   if (!s.ok()) return s;
//
// The macro compiles to `Status::OK()` (the site name is not even
// evaluated) unless the build defines POL_FAILPOINTS — the `faults`
// CMake preset / `tools/run_tier1.sh --faults` turn it on. Firing is
// fully deterministic: a point fires by hit index (`fire_from` /
// `fire_count`) or by a seeded per-hit coin (`probability` + `seed`,
// SplitMix64 over (seed, hit)), never by wall clock or global RNG, so a
// failing schedule replays exactly.
//
// The registry is process-global and thread-safe; every evaluation is
// counted even when the point is not armed, which is how the
// fault-injection suite asserts a site was actually reached.

namespace pol {

// How an armed fail point fires. Default-constructed: fires on every
// hit from the first one, with StatusCode::kInternal.
struct FailPointSpec {
  static constexpr uint64_t kForever = ~uint64_t{0};

  // Fires on hit indices [fire_from, fire_from + fire_count). Hit
  // indices are 0-based and count evaluations since registration (not
  // since arming).
  uint64_t fire_from = 0;
  uint64_t fire_count = kForever;

  // Seeded per-hit coin, applied on top of the window above: the point
  // fires with this probability, deterministically derived from (seed,
  // hit index). 1.0 = always.
  double probability = 1.0;
  uint64_t seed = 0;

  // The injected error.
  StatusCode code = StatusCode::kInternal;
  std::string message;  // Empty: "fail point <name> fired (hit <n>)".
};

class FailPointRegistry {
 public:
  static FailPointRegistry& Global();

  // Arms `name` with the given firing spec, replacing any previous one.
  void Arm(std::string_view name, FailPointSpec spec = FailPointSpec());
  void Disarm(std::string_view name);
  void DisarmAll();

  // Clears hit counters (and disarms everything) — test isolation.
  void Reset();

  // Evaluates the fail point: counts the hit and returns the injected
  // error when the armed spec says this hit fires, OK otherwise.
  Status Evaluate(std::string_view name);

  // Evaluations of `name` so far (0 when never reached).
  uint64_t HitCount(std::string_view name) const;

  // Every name ever evaluated or armed, sorted.
  std::vector<std::string> KnownPoints() const;

 private:
  struct Point {
    uint64_t hits = 0;
    bool armed = false;
    FailPointSpec spec;
  };

  mutable Mutex mutex_;
  std::map<std::string, Point, std::less<>> points_ POL_GUARDED_BY(mutex_);
};

}  // namespace pol

// POL_FAILPOINT(name) -> pol::Status. The no-op form drops `name`
// unevaluated, so sites may build names dynamically without cost in
// normal builds.
#if defined(POL_FAILPOINTS)
#define POL_FAILPOINT(name) ::pol::FailPointRegistry::Global().Evaluate(name)
#else
#define POL_FAILPOINT(name) ::pol::Status::OK()
#endif

#endif  // POL_COMMON_FAILPOINT_H_
