#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace pol {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories from the path for compact output.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  if (level_ == LogLevel::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace pol
