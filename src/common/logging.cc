#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace pol {
namespace {

std::optional<LogLevel> LevelFromEnv() {
  const char* value = std::getenv("POL_LOG_LEVEL");
  if (value == nullptr) return std::nullopt;
  return ParseLogLevelName(value);
}

// The level variable, initialized from POL_LOG_LEVEL on first use so
// the environment wins over the compiled default but loses to an
// explicit SetMinLogLevel call made afterwards.
std::atomic<int>& MinLevelVar() {
  static std::atomic<int> level{static_cast<int>(
      LevelFromEnv().value_or(LogLevel::kInfo))};
  return level;
}

struct SinkState {
  Mutex mutex;
  LogSink sink POL_GUARDED_BY(mutex);  // Empty = stderr default.
};

SinkState& GlobalSink() {
  static SinkState* const state = new SinkState();  // NOLINT(pollint:naked-new): leaked singleton, safe at exit.
  return *state;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

void Emit(LogLevel level, std::string_view line) {
  SinkState& state = GlobalSink();
  {
    MutexLock lock(state.mutex);
    if (state.sink) {
      state.sink(level, line);
      return;
    }
  }
  std::fprintf(stderr, "%.*s\n", static_cast<int>(line.size()), line.data());
}

}  // namespace

void SetMinLogLevel(LogLevel level) {
  MinLevelVar().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(
      MinLevelVar().load(std::memory_order_relaxed));
}

std::optional<LogLevel> ParseLogLevelName(std::string_view name) {
  if (name.size() == 1 && name[0] >= '0' && name[0] <= '4') {
    return static_cast<LogLevel>(name[0] - '0');
  }
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c + 32) : c);
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warning" || lower == "warn") return LogLevel::kWarning;
  if (lower == "error") return LogLevel::kError;
  if (lower == "fatal") return LogLevel::kFatal;
  return std::nullopt;
}

void InitLogLevelFromEnv() {
  if (const std::optional<LogLevel> level = LevelFromEnv()) {
    SetMinLogLevel(*level);
  }
}

LogSink SetLogSink(LogSink sink) {
  SinkState& state = GlobalSink();
  MutexLock lock(state.mutex);
  std::swap(state.sink, sink);
  return sink;
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories from the path for compact output.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  Emit(level_, stream_.str());
  if (level_ == LogLevel::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace pol
