#ifndef POL_COMMON_CHECK_H_
#define POL_COMMON_CHECK_H_

#include "common/logging.h"

// Invariant checking macros.
//
//   POL_CHECK(cond)  << "context";   // always on, aborts on failure
//   POL_DCHECK(cond) << "context";   // debug builds only
//
// Both log the failing condition with file:line through common/logging
// and abort the process (LogLevel::kFatal). POL_CHECK guards invariants
// whose violation means data corruption and must be caught in release
// builds; POL_DCHECK documents preconditions that are cheap to state
// but too hot to test on release paths (per-record loops, lock-held
// sections). Under NDEBUG the POL_DCHECK condition is parsed but never
// evaluated, so side effects in the expression are a bug.

#define POL_CHECK(condition)                                              \
  (condition) ? void(0)                                                   \
              : ::pol::internal_logging::Voidify() &                      \
                    ::pol::internal_logging::LogMessage(                  \
                        ::pol::LogLevel::kFatal, __FILE__, __LINE__)      \
                        .stream()                                         \
                        << "Check failed: " #condition " "

#ifdef NDEBUG
// Short-circuits before evaluating `condition`, but keeps it compiled
// so DCHECK-only expressions cannot bit-rot in release builds.
#define POL_DCHECK(condition) POL_CHECK(true || (condition))
#else
#define POL_DCHECK(condition) POL_CHECK(condition)
#endif

#endif  // POL_COMMON_CHECK_H_
