#ifndef POL_TOOLS_POLLINT_POLDEPS_H_
#define POL_TOOLS_POLLINT_POLDEPS_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "tools/pollint/pollint.h"

// poldeps: whole-project static analysis over the include graph. Where
// pollint.h checks one file at a time, this module parses every
// #include under src/ and tools/, builds the file-level dependency
// graph, and checks it against the declared layer DAG — the
// architectural contract per-line rules cannot express ("obs never
// includes core", "no include cycles anywhere").
//
// Like pollint, the library is filesystem-free: callers hand in
// (path, content) pairs and the parsed layer spec, so the corpus tests
// lint fixture projects hermetically. File reading lives in fileset.h
// (CLI + self-check test only).
//
// Project-level rules (ids share the pollint Finding/FormatFinding
// plumbing):
//   layer-violation  — an include crossing the layer DAG against the
//                      declared edges (transitively closed).
//   include-cycle    — a strongly connected component of ≥ 2 files, or
//                      a self-include (Tarjan SCC).
//   unknown-layer    — a file whose path maps to no declared layer.
//   dangling-include — a quoted include that names a declared layer but
//                      resolves to no file in the set (so it can never
//                      form a dependency edge — a dead or typo'd path).

namespace pol::tools::pollint {

// One file handed to the analysis. `path` is repo-relative with POSIX
// separators ("src/flow/stage.h").
struct SourceFile {
  std::string path;
  std::string content;
};

// The declared layer DAG, parsed from tools/pollint/layers.txt:
//
//   # comment
//   layer <name> [: dep1 dep2 ...]   # deps must be declared earlier
//   assign <path> <layer>            # per-file override (base headers)
//
// Requiring deps to be already-declared makes cycles unrepresentable
// and declaration order a topological order of the DAG.
struct LayerSpec {
  std::vector<std::string> order;  // Declaration (= topological) order.
  // layer -> every layer it may depend on (transitively closed; does
  // not include the layer itself).
  std::map<std::string, std::set<std::string>> allowed;
  // Exact path -> layer, overriding directory inference.
  std::map<std::string, std::string> file_overrides;
};

struct LayerSpecParse {
  LayerSpec spec;
  std::vector<std::string> errors;  // "line N: message"; empty = OK.
};

LayerSpecParse ParseLayerSpec(std::string_view content);

// The layer a path belongs to under `spec`: a file override if one
// matches, else "src/<layer>/..." -> <layer> and "tools/..." ->
// "tools". Empty string = no declared layer.
std::string LayerForPath(const LayerSpec& spec, std::string_view path);

// One resolved project include: `from` includes `to` at `line`.
struct IncludeEdge {
  std::string from;
  std::string to;
  int line = 0;  // 1-based.
};

struct ProjectGraph {
  std::vector<std::string> files;  // Sorted paths of the input set.
  std::vector<IncludeEdge> edges;  // Resolved project includes, sorted.
  // Quoted includes that name a declared layer but match no input file.
  std::vector<IncludeEdge> dangling;  // `to` holds the include text.
  std::map<std::string, std::string> layer_of;  // path -> layer ("" = none).
  // Angle-bracket includes per file ("vector", "mutex", ...).
  std::map<std::string, std::set<std::string>> std_includes;
};

// Parses the includes of every file and resolves quoted includes
// against the file set (as written, and with "src/" prepended — the
// build's two include roots).
ProjectGraph BuildProjectGraph(const std::vector<SourceFile>& files,
                               const LayerSpec& spec);

// Runs the project-level rules over the graph. Deterministic order:
// sorted by (path, line, rule).
std::vector<Finding> CheckProject(const ProjectGraph& graph,
                                  const LayerSpec& spec);

// The std headers visible to `path` through its project includes,
// transitively (the file's own direct angle includes are not part of
// the result). Powers the missing-include transitive fix: a direct-use
// finding is suppressed when an aggregator header already pulls the
// std header in.
std::set<std::string> TransitiveStdIncludes(const ProjectGraph& graph,
                                            const std::string& path);

// The whole pass: project rules plus per-file LintSource with each
// file's transitive std includes wired in.
struct ProjectLintResult {
  std::vector<Finding> findings;
  ProjectGraph graph;
};

ProjectLintResult ProjectLint(const LayerSpec& spec,
                              const std::vector<SourceFile>& files);

// Graphviz DOT export of the include graph, files clustered by layer
// in declaration order. Deterministic: nodes and edges sorted.
std::string ToDot(const ProjectGraph& graph, const LayerSpec& spec);

// Stable ids of the project-level rules, for --list-rules and tests.
const std::vector<std::string>& ProjectRuleIds();

}  // namespace pol::tools::pollint

#endif  // POL_TOOLS_POLLINT_POLDEPS_H_
