#ifndef POL_TOOLS_POLLINT_FILESET_H_
#define POL_TOOLS_POLLINT_FILESET_H_

#include <string>
#include <vector>

#include "tools/pollint/poldeps.h"

// The one place pollint touches the filesystem. The lint libraries
// (pollint.h, poldeps.h) stay path+content in-memory; the CLI and the
// poldeps self-check test use these helpers to turn a repo tree into
// that form.

namespace pol::tools::pollint {

// Collects lintable files (.h/.cc/.cpp) under root/arg (file or
// directory), appending root-relative POSIX paths to `out`. Skips
// build trees (CMakeFiles) and the linter's own corpus fixtures. On
// failure returns false with `error` set.
bool CollectFiles(const std::string& root, const std::string& arg,
                  std::vector<std::string>* out, std::string* error);

// Reads every root-relative path into a SourceFile. On failure returns
// false with `error` set.
bool ReadSources(const std::string& root,
                 const std::vector<std::string>& paths,
                 std::vector<SourceFile>* out, std::string* error);

// Reads one file whole. On failure returns false with `error` set.
bool ReadFile(const std::string& path, std::string* content,
              std::string* error);

}  // namespace pol::tools::pollint

#endif  // POL_TOOLS_POLLINT_FILESET_H_
