// pollint CLI: lints the project tree (or explicit paths) and exits
// non-zero when it finds anything, so it can gate CI. There is no --fix
// mode on purpose — fixes are code review material.
//
//   pollint                          # lint src/ bench/ examples/ tools/
//   pollint --root /path/to/repo     # same, from elsewhere
//   pollint src/flow tools/polinv.cpp
//   pollint --project src tools      # + layer DAG / cycle analysis
//   pollint --project --dot deps.dot # export the include graph
//   pollint --list-rules
//
// Every given path is linted in the one process (run_tier1.sh --lint is
// a single invocation, not a per-file loop). --project additionally
// builds the whole include graph over the collected files, checks it
// against tools/pollint/layers.txt (override with --layers), and feeds
// each file's transitive std includes back into the per-file rules.
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "tools/pollint/fileset.h"
#include "tools/pollint/poldeps.h"
#include "tools/pollint/pollint.h"

namespace pollint = pol::tools::pollint;

namespace {

int RunProject(const std::string& root, const std::vector<std::string>& files,
               const std::string& layers_path, const std::string& dot_path) {
  std::string error;
  std::string layers_text;
  if (!pollint::ReadFile(layers_path, &layers_text, &error)) {
    std::cerr << "pollint: " << error << "\n";
    return 2;
  }
  const pollint::LayerSpecParse parsed = pollint::ParseLayerSpec(layers_text);
  if (!parsed.errors.empty()) {
    for (const std::string& message : parsed.errors) {
      std::cerr << "pollint: " << layers_path << ": " << message << "\n";
    }
    return 2;
  }
  std::vector<pollint::SourceFile> sources;
  if (!pollint::ReadSources(root, files, &sources, &error)) {
    std::cerr << "pollint: " << error << "\n";
    return 2;
  }
  const pollint::ProjectLintResult result =
      pollint::ProjectLint(parsed.spec, sources);
  if (!dot_path.empty()) {
    std::ofstream out(dot_path, std::ios::binary);
    if (!out) {
      std::cerr << "pollint: cannot write " << dot_path << "\n";
      return 2;
    }
    out << pollint::ToDot(result.graph, parsed.spec);
  }
  for (const pollint::Finding& finding : result.findings) {
    std::cout << pollint::FormatFinding(finding) << "\n";
  }
  if (!result.findings.empty()) {
    std::cout << "pollint: " << result.findings.size() << " finding"
              << (result.findings.size() == 1 ? "" : "s") << " in "
              << files.size() << " files\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string layers_path;
  std::string dot_path;
  bool project = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& rule : pollint::RuleIds()) {
        std::cout << rule << "\n";
      }
      for (const std::string& rule : pollint::ProjectRuleIds()) {
        std::cout << rule << " (--project)\n";
      }
      return 0;
    }
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "pollint: --root needs a directory\n";
        return 2;
      }
      root = argv[++i];
      continue;
    }
    if (arg == "--layers") {
      if (i + 1 >= argc) {
        std::cerr << "pollint: --layers needs a file\n";
        return 2;
      }
      layers_path = argv[++i];
      continue;
    }
    if (arg == "--dot") {
      if (i + 1 >= argc) {
        std::cerr << "pollint: --dot needs an output file\n";
        return 2;
      }
      dot_path = argv[++i];
      continue;
    }
    if (arg == "--project") {
      project = true;
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: pollint [--root DIR] [--project] [--layers FILE]\n"
             "               [--dot FILE] [--list-rules] [paths...]\n"
             "Lints src/ bench/ examples/ tools/ under the root when no\n"
             "paths are given. --project (default paths: src tools) adds\n"
             "the include-graph checks against tools/pollint/layers.txt\n"
             "and writes the graph as Graphviz with --dot.\n";
      return 0;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "pollint: unknown option " << arg << "\n";
      return 2;
    }
    args.push_back(arg);
  }
  if (args.empty()) {
    args = project ? std::vector<std::string>{"src", "tools"}
                   : std::vector<std::string>{"src", "bench", "examples",
                                              "tools"};
  }

  std::vector<std::string> files;
  std::string error;
  for (const std::string& arg : args) {
    if (!pollint::CollectFiles(root, arg, &files, &error)) {
      std::cerr << "pollint: " << error << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  if (project) {
    if (layers_path.empty()) layers_path = root + "/tools/pollint/layers.txt";
    return RunProject(root, files, layers_path, dot_path);
  }

  size_t findings = 0;
  for (const std::string& file : files) {
    std::string content;
    if (!pollint::ReadFile(root + "/" + file, &content, &error)) {
      std::cerr << "pollint: " << error << "\n";
      return 2;
    }
    for (const pollint::Finding& finding : pollint::LintSource(file, content)) {
      std::cout << pollint::FormatFinding(finding) << "\n";
      ++findings;
    }
  }
  if (findings != 0) {
    std::cout << "pollint: " << findings << " finding"
              << (findings == 1 ? "" : "s") << " in " << files.size()
              << " files\n";
    return 1;
  }
  return 0;
}
