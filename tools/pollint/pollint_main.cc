// pollint CLI: lints the project tree (or explicit paths) and exits
// non-zero when it finds anything, so it can gate CI. There is no --fix
// mode on purpose — fixes are code review material.
//
//   pollint                          # lint src/ bench/ examples/ tools/
//   pollint --root /path/to/repo     # same, from elsewhere
//   pollint src/flow tools/polinv.cpp
//   pollint --list-rules
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/pollint/pollint.h"

namespace fs = std::filesystem;
namespace pollint = pol::tools::pollint;

namespace {

bool HasLintableExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

// Collects lintable files under `path` (file or directory), repo-root
// relative, sorted for deterministic output.
bool CollectFiles(const fs::path& root, const std::string& arg,
                  std::vector<std::string>* out) {
  const fs::path full = root / arg;
  std::error_code ec;
  if (fs::is_regular_file(full, ec)) {
    out->push_back(arg);
    return true;
  }
  if (!fs::is_directory(full, ec)) {
    std::cerr << "pollint: no such file or directory: " << full.string()
              << "\n";
    return false;
  }
  for (fs::recursive_directory_iterator it(full, ec), end; it != end;
       it.increment(ec)) {
    if (ec) {
      std::cerr << "pollint: " << ec.message() << "\n";
      return false;
    }
    if (!it->is_regular_file() || !HasLintableExtension(it->path())) continue;
    const std::string rel =
        fs::relative(it->path(), root, ec).generic_string();
    // Never lint build trees or the linter's own test fixtures.
    if (rel.find("CMakeFiles") != std::string::npos ||
        rel.find("pollint_corpus") != std::string::npos) {
      continue;
    }
    out->push_back(rel);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& rule : pollint::RuleIds()) {
        std::cout << rule << "\n";
      }
      return 0;
    }
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "pollint: --root needs a directory\n";
        return 2;
      }
      root = argv[++i];
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: pollint [--root DIR] [--list-rules] [paths...]\n"
                   "Lints src/ bench/ examples/ tools/ under the root when "
                   "no paths are given.\n";
      return 0;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "pollint: unknown option " << arg << "\n";
      return 2;
    }
    args.push_back(arg);
  }
  if (args.empty()) args = {"src", "bench", "examples", "tools"};

  std::vector<std::string> files;
  for (const std::string& arg : args) {
    if (!CollectFiles(root, arg, &files)) return 2;
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  size_t findings = 0;
  for (const std::string& file : files) {
    std::ifstream in(root / file, std::ios::binary);
    if (!in) {
      std::cerr << "pollint: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    for (const pollint::Finding& finding :
         pollint::LintSource(file, buffer.str())) {
      std::cout << pollint::FormatFinding(finding) << "\n";
      ++findings;
    }
  }
  if (findings != 0) {
    std::cout << "pollint: " << findings << " finding"
              << (findings == 1 ? "" : "s") << " in " << files.size()
              << " files\n";
    return 1;
  }
  return 0;
}
