#ifndef POL_TOOLS_POLLINT_POLLINT_H_
#define POL_TOOLS_POLLINT_POLLINT_H_

#include <set>
#include <string>
#include <string_view>
#include <vector>

// pollint: the project linter. Token/line-level checks for invariants
// the compiler cannot enforce — include-guard naming, calls banned in
// library code, floating-point ==/!=, unannotated mutex members, and
// directly-used std headers that are not directly included. Findings
// are suppressed per line with `// NOLINT(pollint:<rule>)` (or
// `// NOLINT(pollint)` for all rules). See DESIGN.md § Correctness
// tooling for the rule catalog and suppression policy.
//
// The library is deliberately filesystem-free: LintSource takes the
// repo-relative path (which drives file classification) plus the file
// content, so the corpus tests can lint fixture text under virtual
// paths. The CLI lives in pollint_main.cc; whole-project analysis
// (layer DAG, include cycles) lives in poldeps.h.

namespace pol::tools::pollint {

struct Finding {
  std::string path;     // Repo-relative path, POSIX separators.
  int line = 0;         // 1-based.
  std::string rule;     // Rule id, e.g. "naked-new".
  std::string message;  // Human-readable explanation.
};

// Stable list of every rule id, for --list-rules and the tests.
const std::vector<std::string>& RuleIds();

// Project-derived context a caller may thread into single-file linting.
// Default-constructed options reproduce plain LintSource behavior.
struct LintOptions {
  // Std headers visible to this file through the project headers it
  // includes, transitively (computed by poldeps::TransitiveStdIncludes
  // in --project mode). missing-include treats these as satisfied, so
  // using std::vector under an aggregator header that already includes
  // <vector> no longer fires a false positive. Single-file mode leaves
  // this empty and keeps demanding direct includes.
  std::set<std::string> transitive_std_includes;
};

// Lints one file. `path` must be repo-relative with POSIX separators
// ("src/flow/dataset.h"); classification (library vs tool code, header
// vs source, expected include-guard name) derives from it alone.
std::vector<Finding> LintSource(std::string_view path,
                                std::string_view content);
std::vector<Finding> LintSource(std::string_view path,
                                std::string_view content,
                                const LintOptions& options);

// "path:line: pollint:rule: message" — one line, no trailing newline.
std::string FormatFinding(const Finding& finding);

}  // namespace pol::tools::pollint

#endif  // POL_TOOLS_POLLINT_POLLINT_H_
