#include "tools/pollint/pollint.h"

#include <algorithm>
#include <cctype>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace pol::tools::pollint {
namespace {

// ---------------------------------------------------------------------------
// Lexing: split each physical line into its code part and its comment
// part, with string/char literal contents blanked out of the code part.
// This is the substrate every rule scans, so rules never fire on text
// inside comments or literals.

struct SplitLine {
  std::string code;     // Comments and literal contents removed.
  std::string comment;  // Text of // and /* */ comments on this line.
  // Contents of the string literals on this line, each prefixed by a
  // '\x01' start marker (char literals are skipped). Rules that care
  // what a literal *says* — serving-metric-name — scan this, since the
  // code part deliberately blanks literal contents.
  std::string literals;
};

std::vector<SplitLine> SplitLines(std::string_view content) {
  enum class State {
    kCode,
    kString,
    kChar,
    kLineComment,
    kBlockComment,
    kRawString,
  };
  std::vector<SplitLine> lines;
  SplitLine current;
  State state = State::kCode;
  std::string raw_delimiter;  // For R"delim( ... )delim".
  const size_t n = content.size();
  for (size_t i = 0; i < n; ++i) {
    const char c = content[i];
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      lines.push_back(std::move(current));
      current = SplitLine();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < n && content[i + 1] == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && i + 1 < n && content[i + 1] == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && i + 1 < n && content[i + 1] == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   content[i - 1])) &&
                               content[i - 1] != '_'))) {
          // Raw string: remember the delimiter up to '('.
          raw_delimiter.clear();
          size_t j = i + 2;
          while (j < n && content[j] != '(') raw_delimiter += content[j++];
          current.code += "\"\"";
          current.literals += '\x01';
          i = j;  // Position at '('.
          state = State::kRawString;
        } else if (c == '"') {
          current.code += '"';
          current.literals += '\x01';
          state = State::kString;
        } else if (c == '\'') {
          current.code += '\'';
          state = State::kChar;
        } else {
          current.code += c;
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < n) {
          current.literals += content[i + 1];
          ++i;
        } else if (c == '"') {
          current.code += '"';
          state = State::kCode;
        } else {
          current.literals += c;
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < n) {
          ++i;
        } else if (c == '\'') {
          current.code += '\'';
          state = State::kCode;
        }
        break;
      case State::kLineComment:
        current.comment += c;
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < n && content[i + 1] == '/') {
          state = State::kCode;
          ++i;
        } else {
          current.comment += c;
        }
        break;
      case State::kRawString: {
        const std::string close = ")" + raw_delimiter + "\"";
        if (content.compare(i, close.size(), close) == 0) {
          i += close.size() - 1;
          state = State::kCode;
        } else {
          current.literals += c;
        }
        break;
      }
    }
  }
  lines.push_back(std::move(current));
  return lines;
}

// ---------------------------------------------------------------------------
// Path classification.

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

// Library code gets the strictest rule set.
bool IsLibraryPath(std::string_view path) { return StartsWith(path, "src/"); }

bool IsHeaderPath(std::string_view path) { return EndsWith(path, ".h"); }

// POL_<PATH>_H_ with the leading "src/" dropped for library headers
// (src/flow/dataset.h -> POL_FLOW_DATASET_H_; bench/bench_util.h ->
// POL_BENCH_BENCH_UTIL_H_).
std::string ExpectedIncludeGuard(std::string_view path) {
  std::string_view rel = path;
  if (IsLibraryPath(rel)) rel.remove_prefix(4);
  std::string guard = "POL_";
  for (const char c : rel) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      guard += static_cast<char>(
          std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

// ---------------------------------------------------------------------------
// Suppressions: NOLINT(pollint:<rule>) or NOLINT(pollint) in the
// finding line's comment, or the NOLINTNEXTLINE equivalents on the
// line above.

bool CommentSuppresses(const std::string& comment, std::string_view marker,
                       std::string_view rule) {
  size_t pos = comment.find(std::string(marker) + "(");
  while (pos != std::string::npos) {
    const size_t open = pos + marker.size() + 1;
    const size_t close = comment.find(')', open);
    if (close == std::string::npos) break;
    std::stringstream list(comment.substr(open, close - open));
    std::string entry;
    while (std::getline(list, entry, ',')) {
      const size_t begin = entry.find_first_not_of(" \t");
      const size_t end = entry.find_last_not_of(" \t");
      if (begin == std::string::npos) continue;
      const std::string trimmed = entry.substr(begin, end - begin + 1);
      if (trimmed == "pollint" ||
          trimmed == "pollint:" + std::string(rule)) {
        return true;
      }
    }
    pos = comment.find(std::string(marker) + "(", close);
  }
  return false;
}

// ---------------------------------------------------------------------------
// Per-file rule context.

class Linter {
 public:
  Linter(std::string_view path, std::string_view content,
         const LintOptions& options)
      : path_(path), options_(options), lines_(SplitLines(content)) {}

  std::vector<Finding> Run() {
    if (IsHeaderPath(path_)) CheckIncludeGuard();
    if (IsLibraryPath(path_)) {
      CheckBannedCalls();
      CheckStdoutIo();
      CheckNakedNewDelete();
      CheckMutexAnnotations();
      CheckMissingIncludes();
      CheckCatchSwallow();
      // src/obs is the one layer allowed to touch the raw clock; it is
      // what everything else times through.
      if (!StartsWith(path_, "src/obs/")) CheckDirectTiming();
      // The serving path may block only through the annotated,
      // deadline-bounded vocabulary.
      if (StartsWith(path_, "src/core/serving")) {
        CheckServingWait();
        // ... and may spell "serving."-prefixed metric/span/fail-point
        // names only through the central constants table (which is, of
        // course, exempt from its own rule).
        if (path_ != "src/core/serving_metric_names.h") {
          CheckServingMetricNames();
        }
      }
    }
    CheckFloatCompares();
    // The serving-side boundary applies to every linted tree (bench,
    // examples, tools included); only src/core may touch the map.
    if (!StartsWith(path_, "src/core/")) CheckInventoryQuery();
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
              });
    return std::move(findings_);
  }

 private:
  void Report(size_t index, std::string_view rule, std::string message) {
    if (CommentSuppresses(lines_[index].comment, "NOLINT", rule)) return;
    if (index > 0 && CommentSuppresses(lines_[index - 1].comment,
                                       "NOLINTNEXTLINE", rule)) {
      return;
    }
    findings_.push_back(Finding{std::string(path_),
                                static_cast<int>(index + 1),
                                std::string(rule), std::move(message)});
  }

  static std::string Trim(const std::string& text) {
    const size_t begin = text.find_first_not_of(" \t");
    if (begin == std::string::npos) return "";
    const size_t end = text.find_last_not_of(" \t");
    return text.substr(begin, end - begin + 1);
  }

  // --- include-guard ------------------------------------------------------
  void CheckIncludeGuard() {
    static const std::regex kIfndef(R"(^\s*#\s*ifndef\s+(\w+))");
    static const std::regex kDefine(R"(^\s*#\s*define\s+(\w+))");
    const std::string expected = ExpectedIncludeGuard(path_);
    for (size_t i = 0; i < lines_.size(); ++i) {
      std::smatch match;
      if (!std::regex_search(lines_[i].code, match, kIfndef)) continue;
      if (match[1] != expected) {
        Report(i, "include-guard",
               "include guard '" + match[1].str() + "' should be '" +
                   expected + "'");
        return;
      }
      // The guard name is right; the next code line must define it.
      for (size_t j = i + 1; j < lines_.size(); ++j) {
        if (Trim(lines_[j].code).empty()) continue;
        std::smatch define;
        if (!std::regex_search(lines_[j].code, define, kDefine) ||
            define[1] != expected) {
          Report(j, "include-guard",
                 "#ifndef " + expected +
                     " must be followed by #define " + expected);
        }
        return;
      }
      return;
    }
    Report(0, "include-guard",
           "header has no include guard (expected #ifndef " + expected + ")");
  }

  // --- banned-call --------------------------------------------------------
  void CheckBannedCalls() {
    static const std::regex kBanned(
        R"((^|[^\w.:>])(::|std::)?(rand|srand|strtok|gmtime|localtime)\s*\()");
    for (size_t i = 0; i < lines_.size(); ++i) {
      std::smatch match;
      if (std::regex_search(lines_[i].code, match, kBanned)) {
        // std::string first operand: char* + string&& front-inserts,
        // which GCC 12 -O3 flags with a bogus -Wrestrict.
        Report(i, "banned-call",
               std::string("'") + match[3].str() +
                   "' is banned in library code (non-reentrant or "
                   "non-deterministic); use common/rng or common/time_util");
      }
    }
    // The persistence layer must never write through buffered stream
    // APIs: a torn ofstream write is exactly the corruption class the
    // store exists to rule out. Everything durable goes through the
    // temp + fsync + rename helpers.
    if (StartsWith(path_, "src/store/")) {
      static const std::regex kRawWrite(
          R"((^|[^\w.:>])((std::)?(ofstream|fstream)\b|fopen\s*\())");
      static const std::regex kInclude(R"(^\s*#\s*include\b)");
      for (size_t i = 0; i < lines_.size(); ++i) {
        // `#include <fstream>` names the header, not a write.
        if (std::regex_search(lines_[i].code, kInclude)) continue;
        std::smatch match;
        if (std::regex_search(lines_[i].code, match, kRawWrite)) {
          Report(i, "banned-call",
                 "raw file output is banned in src/store/; durable "
                 "writes go through store/atomic_file.h "
                 "(WriteFileDurable: temp + fsync + rename)");
        }
      }
    }
  }

  // --- stdout-io ----------------------------------------------------------
  void CheckStdoutIo() {
    static const std::regex kCout(R"((^|[^\w])std::cout\b)");
    static const std::regex kPrintf(R"((^|[^\w.:>])(std::)?printf\s*\()");
    for (size_t i = 0; i < lines_.size(); ++i) {
      std::smatch match;
      if (std::regex_search(lines_[i].code, match, kCout) ||
          std::regex_search(lines_[i].code, match, kPrintf)) {
        Report(i, "stdout-io",
               "library code must not write to stdout; report via "
               "pol::Status or common/logging (tools/examples/bench may)");
      }
    }
  }

  // --- naked-new ----------------------------------------------------------
  void CheckNakedNewDelete() {
    static const std::regex kNew(R"((^|[^\w])new\b)");
    static const std::regex kDelete(R"((^|[^\w])delete\b)");
    for (size_t i = 0; i < lines_.size(); ++i) {
      const std::string& code = lines_[i].code;
      std::smatch match;
      if (std::regex_search(code, match, kNew)) {
        Report(i, "naked-new",
               "naked 'new' in library code; use std::make_unique / "
               "std::make_shared or a container");
        continue;
      }
      auto begin = code.cbegin();
      while (std::regex_search(begin, code.cend(), match, kDelete)) {
        // `= delete;` (deleted special member) is not a deallocation.
        const auto keyword =
            begin + (match.position(0) + match.length(1));
        auto prev = keyword;
        while (prev != code.cbegin() &&
               std::isspace(static_cast<unsigned char>(*(prev - 1)))) {
          --prev;
        }
        if (prev == code.cbegin() || *(prev - 1) != '=') {
          Report(i, "naked-new",
                 "naked 'delete' in library code; prefer RAII ownership");
          break;
        }
        begin += match.position(0) + match.length(0);
      }
    }
  }

  // --- float-compare ------------------------------------------------------
  static bool IsFloatLiteral(const std::string& token) {
    static const std::regex kFloat(
        R"(^[+-]?(\d+\.\d*|\.\d+|\d+\.?\d*[eE][+-]?\d+)[fFlL]?$)");
    return std::regex_match(token, kFloat);
  }

  void CheckFloatCompares() {
    for (size_t i = 0; i < lines_.size(); ++i) {
      const std::string& code = lines_[i].code;
      for (size_t pos = 0; pos + 1 < code.size(); ++pos) {
        const bool eq = code[pos] == '=' && code[pos + 1] == '=';
        const bool ne = code[pos] == '!' && code[pos + 1] == '=';
        if (!eq && !ne) continue;
        // Skip <=, >=, ==(second char of ===? not C++), and compound
        // assignment lookalikes by requiring the previous char not be
        // one of <>=!+-*/%&|^.
        if (pos > 0 && std::string("<>=!+-*/%&|^").find(code[pos - 1]) !=
                           std::string::npos) {
          ++pos;
          continue;
        }
        // operator==/operator!= definitions are fine.
        const std::string before = code.substr(0, pos);
        const size_t op = before.find_last_not_of(" \t");
        if (op != std::string::npos && op + 1 >= 8 &&
            before.compare(op - 7, 8, "operator") == 0) {
          ++pos;
          continue;
        }
        const std::string prev = TokenBefore(code, pos);
        const std::string next = TokenAfter(code, pos + 2);
        if (IsFloatLiteral(prev) || IsFloatLiteral(next)) {
          Report(i, "float-compare",
                 "floating-point ==/!= comparison; use an epsilon or "
                 "suppress if the exact compare is intentional");
          break;
        }
        ++pos;
      }
    }
  }

  static bool IsTokenChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.';
  }

  // An exponent sign is part of the literal token (1e-9, 2.5E+3).
  static bool IsExponentSign(char sign, char before) {
    return (sign == '+' || sign == '-') && (before == 'e' || before == 'E');
  }

  static std::string TokenBefore(const std::string& code, size_t pos) {
    size_t end = pos;
    while (end > 0 &&
           std::isspace(static_cast<unsigned char>(code[end - 1]))) {
      --end;
    }
    size_t begin = end;
    while (begin > 0 &&
           (IsTokenChar(code[begin - 1]) ||
            (begin > 1 && IsExponentSign(code[begin - 1], code[begin - 2])))) {
      --begin;
    }
    return code.substr(begin, end - begin);
  }

  static std::string TokenAfter(const std::string& code, size_t pos) {
    size_t begin = pos;
    while (begin < code.size() &&
           std::isspace(static_cast<unsigned char>(code[begin]))) {
      ++begin;
    }
    size_t end = begin;
    if (end < code.size() && (code[end] == '+' || code[end] == '-')) ++end;
    while (end < code.size() &&
           (IsTokenChar(code[end]) ||
            (end > 0 && IsExponentSign(code[end], code[end - 1])))) {
      ++end;
    }
    return code.substr(begin, end - begin);
  }

  // --- mutex-annotation ---------------------------------------------------
  // Library code locks through the annotated vocabulary in
  // common/mutex.h so Clang's -Wthread-safety analysis (the `analyze`
  // preset) can see every acquisition. Two checks:
  //   (a) raw std::mutex family types are banned in src/ outside the
  //       wrapper itself — an unannotated mutex is invisible to the
  //       analysis;
  //   (b) a pol::Mutex *member* (trailing-underscore name, so function
  //       locals stay out of scope) must have at least one field in the
  //       same file annotated POL_GUARDED_BY / POL_PT_GUARDED_BY with
  //       its name — a capability that guards nothing is either dead or
  //       undocumented.
  void CheckMutexAnnotations() {
    if (path_ == "src/common/mutex.h") return;  // The wrapper itself.
    static const std::regex kStdMutex(
        R"((^|[^\w])std::(shared_|recursive_|timed_|shared_timed_)?mutex\b)");
    static const std::regex kMutexMember(
        R"(^\s*(mutable\s+)?(pol::)?Mutex\s+(\w+_)\s*;)");
    for (size_t i = 0; i < lines_.size(); ++i) {
      std::smatch match;
      if (std::regex_search(lines_[i].code, match, kStdMutex)) {
        Report(i, "mutex-annotation",
               "raw std::" + match[2].str() +
                   "mutex in library code; use pol::Mutex + POL_GUARDED_BY "
                   "(common/mutex.h) so -Wthread-safety can analyze it");
        continue;
      }
      if (!std::regex_search(lines_[i].code, match, kMutexMember)) continue;
      const std::string name = match[3].str();
      bool guarded = false;
      for (const SplitLine& line : lines_) {
        if (line.code.find("POL_GUARDED_BY(" + name + ")") !=
                std::string::npos ||
            line.code.find("POL_PT_GUARDED_BY(" + name + ")") !=
                std::string::npos) {
          guarded = true;
          break;
        }
      }
      if (!guarded) {
        Report(i, "mutex-annotation",
               "mutex member '" + name +
                   "' guards no field; annotate what it protects with "
                   "POL_GUARDED_BY(" + name + ")");
      }
    }
  }

  // --- catch-swallow ------------------------------------------------------
  // A catch handler in library code must do *something* with the fault:
  // rethrow, return, convert to pol::Status, log, or abort. An empty
  // (or purely cosmetic) handler silently swallows the failure — the
  // exact anti-pattern the failure-containment layer exists to prevent.
  void CheckCatchSwallow() {
    static const std::regex kCatch(R"((^|[^\w])catch\s*\()");
    static const std::regex kHandled(
        R"((^|[^\w])(throw|return|abort|exit|Status|status|POL_LOG|POL_CHECK)\b)");
    for (size_t i = 0; i < lines_.size(); ++i) {
      std::smatch match;
      if (!std::regex_search(lines_[i].code, match, kCatch)) continue;
      // Collect the handler body: from the '{' after the catch clause to
      // its matching '}' (the split-line code already has comments and
      // literal contents blanked, so braces in those cannot confuse the
      // depth count).
      size_t line = i;
      size_t pos = static_cast<size_t>(match.position(0) + match.length(0));
      int depth = 0;
      bool opened = false;
      bool closed = false;
      std::string body;
      while (line < lines_.size() && !closed) {
        const std::string& code = lines_[line].code;
        while (pos < code.size()) {
          const char c = code[pos++];
          if (c == '{') {
            if (opened) body += c;
            ++depth;
            opened = true;
          } else if (c == '}') {
            --depth;
            if (opened && depth == 0) {
              closed = true;
              break;
            }
            body += c;
          } else if (opened) {
            body += c;
          }
        }
        body += '\n';
        ++line;
        pos = 0;
      }
      if (opened && closed && !std::regex_search(body, kHandled)) {
        Report(i, "catch-swallow",
               "catch handler swallows the exception; rethrow, return, "
               "convert to pol::Status, or log it");
      }
    }
  }

  // --- direct-timing ------------------------------------------------------
  // Library code must measure time through obs/clock.h (obs::NowSeconds,
  // obs::ScopedTimer, POL_TRACE_SPAN) rather than reading the monotonic
  // clocks directly: that keeps one timing authority the POL_OBS switch
  // and the trace/metrics layer can see. (system_clock is out of scope —
  // wall-calendar time is common/time_util's business.)
  void CheckDirectTiming() {
    static const std::regex kClockNow(
        R"((^|[^\w])(std::chrono::)?(steady_clock|high_resolution_clock)\s*::\s*now\s*\()");
    for (size_t i = 0; i < lines_.size(); ++i) {
      std::smatch match;
      if (std::regex_search(lines_[i].code, match, kClockNow)) {
        Report(i, "direct-timing",
               std::string("'") + match[3].str() +
                   "::now' in library code; time through obs/clock.h "
                   "(obs::NowSeconds / POL_TRACE_SPAN) instead");
      }
    }
  }

  // --- inventory-query ----------------------------------------------------
  // src/core owns the raw summary map; every other layer queries the
  // inventory through core::InventoryQuery (point lookups, CellsForRoute,
  // VisitGroupingSet). Direct `summaries()` iteration outside src/core
  // bypasses the serving-side indexes and pins callers to the build-side
  // container type.
  void CheckInventoryQuery() {
    static const std::regex kSummaries(R"((^|[^\w])summaries\s*\(\s*\))");
    for (size_t i = 0; i < lines_.size(); ++i) {
      std::smatch match;
      if (std::regex_search(lines_[i].code, match, kSummaries)) {
        Report(i, "inventory-query",
               "direct summaries() access outside src/core; query through "
               "core::InventoryQuery (VisitGroupingSet / point lookups) "
               "instead");
      }
    }
  }

  // --- serving-wait -------------------------------------------------------
  // The serving path (src/core/serving*) blocks only through the
  // annotated pol::CondVar, whose WaitFor bounds every wait by a
  // deadline: a raw std::condition_variable escapes the Clang
  // thread-safety analysis, and sleep-polling (sleep_for / usleep /
  // nanosleep) turns deadline misses into fixed latency floors that no
  // Release() can cut short.
  void CheckServingWait() {
    static const std::regex kCondVar(R"(std::condition_variable(_any)?\b)");
    static const std::regex kSleep(
        R"((^|[^\w])(sleep_for|sleep_until|usleep|nanosleep)\s*\()");
    for (size_t i = 0; i < lines_.size(); ++i) {
      std::smatch match;
      if (std::regex_search(lines_[i].code, match, kCondVar)) {
        Report(i, "serving-wait",
               "raw std::condition_variable in the serving path; wait on "
               "the annotated pol::CondVar so every block is "
               "deadline-bounded (WaitFor) and analyzable");
      } else if (std::regex_search(lines_[i].code, match, kSleep)) {
        Report(i, "serving-wait",
               std::string("'") + match[2].str() +
                   "' sleep-based waiting in the serving path; use "
                   "pol::CondVar::WaitFor with a deadline so a Release() "
                   "can wake the waiter early");
      }
    }
  }

  // --- serving-metric-name ------------------------------------------------
  // Every "serving."-prefixed name in src/core/serving* — metric, trace
  // span, fail point — must come from core/serving_metric_names.h, so
  // dashboards, `polinv watch` and the run-report scanners never chase
  // a typo'd ad-hoc literal. Scans the captured literal contents: the
  // `code` part blanks them, so this is the one rule reading
  // SplitLine::literals. Only the literal's *start* is tested — a
  // message like "serving last good snapshot" (no dot) or an embedded
  // mention does not trip it.
  void CheckServingMetricNames() {
    constexpr std::string_view kPrefix = "serving.";
    for (size_t i = 0; i < lines_.size(); ++i) {
      const std::string& literals = lines_[i].literals;
      size_t pos = 0;
      while ((pos = literals.find('\x01', pos)) != std::string::npos) {
        ++pos;
        if (literals.compare(pos, kPrefix.size(), kPrefix) == 0) {
          Report(i, "serving-metric-name",
                 "ad-hoc \"serving.*\" name literal in the serving path; "
                 "use the constants in core/serving_metric_names.h");
          break;  // One finding per line.
        }
      }
    }
  }

  // --- missing-include ----------------------------------------------------
  void CheckMissingIncludes() {
    struct Entry {
      const char* header;
      std::regex use;
    };
    static const std::vector<Entry>* const kEntries = new std::vector<Entry>{
        {"vector", std::regex(R"(std::vector\b)")},
        {"string", std::regex(R"(std::(string\b|to_string\b))")},
        {"string_view", std::regex(R"(std::string_view\b)")},
        {"unordered_map", std::regex(R"(std::unordered_map\b)")},
        {"unordered_set", std::regex(R"(std::unordered_set\b)")},
        {"deque", std::regex(R"(std::deque\b)")},
        {"optional", std::regex(R"(std::(optional\b|nullopt\b))")},
        {"functional", std::regex(R"(std::function\b)")},
        {"thread", std::regex(R"(std::(thread\b|this_thread\b))")},
        {"atomic", std::regex(R"(std::atomic\b)")},
        {"mutex",
         std::regex(
             R"(std::(mutex\b|lock_guard\b|unique_lock\b|scoped_lock\b))")},
        {"condition_variable", std::regex(R"(std::condition_variable\b)")},
        {"memory",
         std::regex(
             R"(std::(shared_ptr\b|unique_ptr\b|weak_ptr\b|make_shared\b|make_unique\b))")},
        {"chrono", std::regex(R"(std::chrono\b)")},
    };
    static const std::regex kInclude(R"(^\s*#\s*include\s*<([^>]+)>)");
    std::set<std::string> included;
    for (const SplitLine& line : lines_) {
      std::smatch match;
      if (std::regex_search(line.code, match, kInclude)) {
        included.insert(match[1].str());
      }
    }
    for (const Entry& entry : *kEntries) {
      if (included.count(entry.header) != 0) continue;
      // Visible through a transitively included project header (poldeps
      // computes the closure in --project mode): not a missing include.
      if (options_.transitive_std_includes.count(entry.header) != 0) continue;
      for (size_t i = 0; i < lines_.size(); ++i) {
        if (!std::regex_search(lines_[i].code, entry.use)) continue;
        Report(i, "missing-include",
               std::string("uses std identifiers from <") + entry.header +
                   "> without including it directly");
        break;  // One finding per missing header.
      }
    }
  }

  std::string_view path_;
  const LintOptions& options_;
  std::vector<SplitLine> lines_;
  std::vector<Finding> findings_;
};

}  // namespace

const std::vector<std::string>& RuleIds() {
  static const std::vector<std::string>* const kIds =
      new std::vector<std::string>{
          "banned-call", "catch-swallow", "direct-timing",
          "float-compare", "include-guard", "inventory-query",
          "missing-include", "mutex-annotation", "naked-new",
          "serving-metric-name", "serving-wait", "stdout-io",
      };
  return *kIds;
}

std::vector<Finding> LintSource(std::string_view path,
                                std::string_view content) {
  return LintSource(path, content, LintOptions());
}

std::vector<Finding> LintSource(std::string_view path,
                                std::string_view content,
                                const LintOptions& options) {
  return Linter(path, content, options).Run();
}

std::string FormatFinding(const Finding& finding) {
  std::ostringstream out;
  out << finding.path << ":" << finding.line << ": pollint:" << finding.rule
      << ": " << finding.message;
  return out.str();
}

}  // namespace pol::tools::pollint
