#include "tools/pollint/fileset.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

namespace pol::tools::pollint {
namespace {

namespace fs = std::filesystem;

bool HasLintableExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

}  // namespace

bool CollectFiles(const std::string& root, const std::string& arg,
                  std::vector<std::string>* out, std::string* error) {
  const fs::path full = fs::path(root) / arg;
  std::error_code ec;
  if (fs::is_regular_file(full, ec)) {
    out->push_back(arg);
    return true;
  }
  if (!fs::is_directory(full, ec)) {
    *error = "no such file or directory: " + full.string();
    return false;
  }
  for (fs::recursive_directory_iterator it(full, ec), end; it != end;
       it.increment(ec)) {
    if (ec) {
      *error = ec.message();
      return false;
    }
    if (!it->is_regular_file() || !HasLintableExtension(it->path())) continue;
    const std::string rel =
        fs::relative(it->path(), root, ec).generic_string();
    // Never lint build trees or the linter's own test fixtures.
    if (rel.find("CMakeFiles") != std::string::npos ||
        rel.find("pollint_corpus") != std::string::npos) {
      continue;
    }
    out->push_back(rel);
  }
  return true;
}

bool ReadFile(const std::string& path, std::string* content,
              std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot read " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *content = buffer.str();
  return true;
}

bool ReadSources(const std::string& root,
                 const std::vector<std::string>& paths,
                 std::vector<SourceFile>* out, std::string* error) {
  for (const std::string& path : paths) {
    SourceFile file;
    file.path = path;
    if (!ReadFile((fs::path(root) / path).string(), &file.content, error)) {
      return false;
    }
    out->push_back(std::move(file));
  }
  return true;
}

}  // namespace pol::tools::pollint
