#include "tools/pollint/poldeps.h"

#include <algorithm>
#include <functional>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace pol::tools::pollint {
namespace {

std::vector<std::string> Tokenize(const std::string& text) {
  // Give ':' its own token so "layer core : flow sim" and
  // "layer core: flow sim" parse the same.
  std::string spaced;
  spaced.reserve(text.size());
  for (const char c : text) {
    if (c == ':') {
      spaced += " : ";
    } else {
      spaced += c;
    }
  }
  std::istringstream in(spaced);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

void SortFindings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.path, a.line, a.rule) <
                     std::tie(b.path, b.line, b.rule);
            });
}

// First path component after "src/" ("src/flow/stage.h" -> "flow"), or
// the whole first component for non-src trees ("tools/..." -> "tools").
std::string DirComponent(std::string_view path) {
  std::string_view rest = path;
  if (rest.substr(0, 4) == "src/") rest.remove_prefix(4);
  const size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return "";
  return std::string(rest.substr(0, slash));
}

}  // namespace

LayerSpecParse ParseLayerSpec(std::string_view content) {
  LayerSpecParse parse;
  LayerSpec& spec = parse.spec;
  std::istringstream in{std::string(content)};
  std::string raw;
  int line_number = 0;
  const auto error = [&](const std::string& message) {
    parse.errors.push_back("line " + std::to_string(line_number) + ": " +
                           message);
  };
  while (std::getline(in, raw)) {
    ++line_number;
    const size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    const std::vector<std::string> tokens = Tokenize(raw);
    if (tokens.empty()) continue;
    if (tokens[0] == "layer") {
      if (tokens.size() < 2 || tokens[1] == ":") {
        error("'layer' needs a name");
        continue;
      }
      const std::string& name = tokens[1];
      if (spec.allowed.count(name) != 0) {
        error("layer '" + name + "' declared twice");
        continue;
      }
      std::set<std::string> deps;
      if (tokens.size() > 2) {
        if (tokens[2] != ":") {
          error("expected ':' after layer name '" + name + "'");
          continue;
        }
        bool ok = true;
        for (size_t i = 3; i < tokens.size(); ++i) {
          const auto it = spec.allowed.find(tokens[i]);
          if (it == spec.allowed.end()) {
            // Already-declared deps make cycles unrepresentable and
            // declaration order a topological order.
            error("layer '" + name + "' depends on '" + tokens[i] +
                  "', which is not declared above it");
            ok = false;
            break;
          }
          deps.insert(tokens[i]);
          deps.insert(it->second.begin(), it->second.end());
        }
        if (!ok) continue;
      }
      spec.order.push_back(name);
      spec.allowed.emplace(name, std::move(deps));
    } else if (tokens[0] == "assign") {
      if (tokens.size() != 3) {
        error("'assign' needs exactly a path and a layer");
        continue;
      }
      if (spec.allowed.count(tokens[2]) == 0) {
        error("assign to undeclared layer '" + tokens[2] + "'");
        continue;
      }
      spec.file_overrides[tokens[1]] = tokens[2];
    } else {
      error("unknown directive '" + tokens[0] + "'");
    }
  }
  return parse;
}

std::string LayerForPath(const LayerSpec& spec, std::string_view path) {
  const auto it = spec.file_overrides.find(std::string(path));
  if (it != spec.file_overrides.end()) return it->second;
  std::string layer;
  if (path.substr(0, 4) == "src/") {
    layer = DirComponent(path);
  } else if (path.substr(0, 6) == "tools/") {
    layer = "tools";
  }
  if (!layer.empty() && spec.allowed.count(layer) != 0) return layer;
  return "";
}

ProjectGraph BuildProjectGraph(const std::vector<SourceFile>& files,
                               const LayerSpec& spec) {
  static const std::regex kInclude(
      R"inc(^\s*#\s*include\s*(<([^>]+)>|"([^"]+)"))inc");
  ProjectGraph graph;
  std::set<std::string> paths;
  for (const SourceFile& file : files) paths.insert(file.path);
  graph.files.assign(paths.begin(), paths.end());
  for (const std::string& path : graph.files) {
    graph.layer_of[path] = LayerForPath(spec, path);
  }
  for (const SourceFile& file : files) {
    std::istringstream in(file.content);
    std::string line;
    int line_number = 0;
    while (std::getline(in, line)) {
      ++line_number;
      std::smatch match;
      if (!std::regex_search(line, match, kInclude)) continue;
      if (match[2].matched) {
        graph.std_includes[file.path].insert(match[2].str());
        continue;
      }
      const std::string inc = match[3].str();
      // The build has two include roots: the repo (tools/...) and src/.
      std::string resolved;
      if (paths.count(inc) != 0) {
        resolved = inc;
      } else if (paths.count("src/" + inc) != 0) {
        resolved = "src/" + inc;
      }
      if (!resolved.empty()) {
        graph.edges.push_back(IncludeEdge{file.path, resolved, line_number});
      } else if (!LayerForPath(spec, inc).empty() ||
                 !LayerForPath(spec, "src/" + inc).empty()) {
        // Looks like project code (its directory names a declared
        // layer) but matches nothing in the set: a dead or typo'd path
        // that can never form a dependency edge. Includes outside the
        // layered dirs (third-party, generated) stay exempt.
        graph.dangling.push_back(IncludeEdge{file.path, inc, line_number});
      }
    }
  }
  const auto by_from_line = [](const IncludeEdge& a, const IncludeEdge& b) {
    return std::tie(a.from, a.line, a.to) < std::tie(b.from, b.line, b.to);
  };
  std::sort(graph.edges.begin(), graph.edges.end(), by_from_line);
  std::sort(graph.dangling.begin(), graph.dangling.end(), by_from_line);
  return graph;
}

namespace {

// Tarjan's strongly-connected-components algorithm over the include
// graph. Any SCC with more than one file (or a self-include) is an
// include cycle.
class SccFinder {
 public:
  explicit SccFinder(const ProjectGraph& graph) : graph_(graph) {
    for (const IncludeEdge& edge : graph.edges) {
      adjacency_[edge.from].push_back(edge.to);
    }
  }

  std::vector<std::vector<std::string>> Cycles() {
    for (const std::string& file : graph_.files) {
      if (index_.count(file) == 0) Visit(file);
    }
    std::vector<std::vector<std::string>> cycles;
    for (std::vector<std::string>& scc : sccs_) {
      if (scc.size() > 1 || SelfLoop(scc.front())) {
        std::sort(scc.begin(), scc.end());
        cycles.push_back(std::move(scc));
      }
    }
    std::sort(cycles.begin(), cycles.end());
    return cycles;
  }

 private:
  bool SelfLoop(const std::string& file) const {
    const auto it = adjacency_.find(file);
    if (it == adjacency_.end()) return false;
    return std::find(it->second.begin(), it->second.end(), file) !=
           it->second.end();
  }

  void Visit(const std::string& file) {
    index_[file] = lowlink_[file] = next_index_++;
    stack_.push_back(file);
    on_stack_.insert(file);
    const auto adj = adjacency_.find(file);
    if (adj != adjacency_.end()) {
      for (const std::string& to : adj->second) {
        if (index_.count(to) == 0) {
          Visit(to);
          lowlink_[file] = std::min(lowlink_[file], lowlink_[to]);
        } else if (on_stack_.count(to) != 0) {
          lowlink_[file] = std::min(lowlink_[file], index_[to]);
        }
      }
    }
    if (lowlink_[file] == index_[file]) {
      std::vector<std::string> scc;
      while (true) {
        std::string member = std::move(stack_.back());
        stack_.pop_back();
        on_stack_.erase(member);
        const bool done = member == file;
        scc.push_back(std::move(member));
        if (done) break;
      }
      sccs_.push_back(std::move(scc));
    }
  }

  const ProjectGraph& graph_;
  std::map<std::string, std::vector<std::string>> adjacency_;
  std::map<std::string, int> index_;
  std::map<std::string, int> lowlink_;
  std::vector<std::string> stack_;
  std::set<std::string> on_stack_;
  std::vector<std::vector<std::string>> sccs_;
  int next_index_ = 0;
};

std::string JoinArrow(const std::vector<std::string>& parts) {
  std::string out;
  for (const std::string& part : parts) {
    if (!out.empty()) out += " -> ";
    out += part;
  }
  return out;
}

}  // namespace

std::vector<Finding> CheckProject(const ProjectGraph& graph,
                                  const LayerSpec& spec) {
  std::vector<Finding> findings;
  for (const std::string& file : graph.files) {
    if (graph.layer_of.at(file).empty()) {
      findings.push_back(Finding{
          file, 1, "unknown-layer",
          "file maps to no declared layer; add its directory to "
          "tools/pollint/layers.txt (or an 'assign' override)"});
    }
  }
  for (const IncludeEdge& edge : graph.edges) {
    const std::string& from_layer = graph.layer_of.at(edge.from);
    const std::string& to_layer = graph.layer_of.at(edge.to);
    // Unknown layers are already reported above.
    if (from_layer.empty() || to_layer.empty()) continue;
    if (from_layer == to_layer) continue;
    if (spec.allowed.at(from_layer).count(to_layer) != 0) continue;
    std::string allowed;
    for (const std::string& dep : spec.allowed.at(from_layer)) {
      if (!allowed.empty()) allowed += ", ";
      allowed += dep;
    }
    findings.push_back(Finding{
        edge.from, edge.line, "layer-violation",
        "include of '" + edge.to + "' (layer " + to_layer +
            ") from layer " + from_layer +
            " is not on the declared DAG (may depend on: " +
            (allowed.empty() ? "nothing" : allowed) + ")"});
  }
  for (const std::vector<std::string>& cycle : SccFinder(graph).Cycles()) {
    // One finding per cycle, cited at the first member's edge that
    // stays inside the cycle.
    const std::set<std::string> members(cycle.begin(), cycle.end());
    int line = 1;
    for (const IncludeEdge& edge : graph.edges) {
      if (edge.from == cycle.front() && members.count(edge.to) != 0) {
        line = edge.line;
        break;
      }
    }
    findings.push_back(Finding{cycle.front(), line, "include-cycle",
                               "include cycle: " + JoinArrow(cycle) +
                                   " -> " + cycle.front()});
  }
  for (const IncludeEdge& edge : graph.dangling) {
    findings.push_back(Finding{
        edge.from, edge.line, "dangling-include",
        "include \"" + edge.to +
            "\" names a declared layer but resolves to no file in the "
            "scanned set (dead or typo'd path)"});
  }
  SortFindings(findings);
  return findings;
}

std::set<std::string> TransitiveStdIncludes(const ProjectGraph& graph,
                                            const std::string& path) {
  std::map<std::string, std::vector<std::string>> adjacency;
  for (const IncludeEdge& edge : graph.edges) {
    adjacency[edge.from].push_back(edge.to);
  }
  std::set<std::string> visited;
  std::vector<std::string> frontier{path};
  visited.insert(path);
  std::set<std::string> result;
  while (!frontier.empty()) {
    const std::string current = std::move(frontier.back());
    frontier.pop_back();
    // The starting file's own angle includes are not "transitive".
    if (current != path) {
      const auto std_it = graph.std_includes.find(current);
      if (std_it != graph.std_includes.end()) {
        result.insert(std_it->second.begin(), std_it->second.end());
      }
    }
    const auto adj = adjacency.find(current);
    if (adj == adjacency.end()) continue;
    for (const std::string& to : adj->second) {
      if (visited.insert(to).second) frontier.push_back(to);
    }
  }
  return result;
}

ProjectLintResult ProjectLint(const LayerSpec& spec,
                              const std::vector<SourceFile>& files) {
  ProjectLintResult result;
  result.graph = BuildProjectGraph(files, spec);
  result.findings = CheckProject(result.graph, spec);
  for (const SourceFile& file : files) {
    LintOptions options;
    options.transitive_std_includes =
        TransitiveStdIncludes(result.graph, file.path);
    std::vector<Finding> findings =
        LintSource(file.path, file.content, options);
    result.findings.insert(result.findings.end(),
                           std::make_move_iterator(findings.begin()),
                           std::make_move_iterator(findings.end()));
  }
  SortFindings(result.findings);
  return result;
}

std::string ToDot(const ProjectGraph& graph, const LayerSpec& spec) {
  std::ostringstream out;
  out << "digraph poldeps {\n";
  out << "  rankdir=LR;\n";
  out << "  node [shape=box, fontsize=10];\n";
  std::set<std::string> clustered;
  for (const std::string& layer : spec.order) {
    std::vector<std::string> members;
    for (const std::string& file : graph.files) {
      if (graph.layer_of.at(file) == layer) members.push_back(file);
    }
    if (members.empty()) continue;
    out << "  subgraph cluster_" << layer << " {\n";
    out << "    label=\"" << layer << "\";\n";
    for (const std::string& file : members) {
      out << "    \"" << file << "\";\n";
      clustered.insert(file);
    }
    out << "  }\n";
  }
  for (const std::string& file : graph.files) {
    if (clustered.count(file) == 0) out << "  \"" << file << "\";\n";
  }
  // Dedup multi-line includes of the same target; std::set iteration
  // keeps edge output sorted.
  std::set<std::pair<std::string, std::string>> seen;
  for (const IncludeEdge& edge : graph.edges) {
    seen.insert({edge.from, edge.to});
  }
  for (const auto& [from, to] : seen) {
    out << "  \"" << from << "\" -> \"" << to << "\";\n";
  }
  out << "}\n";
  return out.str();
}

const std::vector<std::string>& ProjectRuleIds() {
  static const std::vector<std::string>* const kIds =
      new std::vector<std::string>{
          "dangling-include", "include-cycle", "layer-violation",
          "unknown-layer",
      };  // NOLINT(pollint:naked-new): leaked singleton, safe at exit.
  return *kIds;
}

}  // namespace pol::tools::pollint
