// polinv — command-line inspector for saved Patterns-of-Life inventory
// files (*.polinv).
//
//   polinv stats <file>                    header + per-grouping-set counts
//   polinv query <file> <lat> <lng>        Table-3 summary of the cell
//   polinv top <file> <n>                  n busiest cells
//   polinv export <file>                   CSV of the (cell) grouping set
//   polinv geojson <file> [min_records]    cell polygons as GeoJSON
//
// Exit code 0 on success, 1 on usage errors, 2 on IO/corruption.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <vector>

#include "core/inventory.h"
#include "hexgrid/hexgrid.h"
#include "sim/ports.h"

namespace pol {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  polinv stats   <file.polinv>\n"
               "  polinv query   <file.polinv> <lat> <lng>\n"
               "  polinv top     <file.polinv> <n>\n"
               "  polinv export  <file.polinv>\n"
               "  polinv geojson <file.polinv> [min_records]\n");
  return 1;
}

Result<core::Inventory> Load(const char* path) {
  return core::Inventory::LoadFromFile(path);
}

int CmdStats(const core::Inventory& inv) {
  std::printf("resolution:        %d (mean cell ~%.1f km^2)\n",
              inv.resolution(), hex::MeanCellAreaKm2(inv.resolution()));
  std::printf("summaries:         %zu\n", inv.size());
  std::map<int, uint64_t> by_gs;
  uint64_t records = 0;
  for (const auto& [key, summary] : inv.summaries()) {
    ++by_gs[key.grouping_set];
    if (key.grouping_set == 0) records += summary.record_count();
  }
  static const char* kNames[] = {"(cell)", "(cell,type)",
                                 "(cell,origin,destination,type)"};
  for (const auto& [gs, count] : by_gs) {
    std::printf("  grouping set %d %-32s %llu\n", gs,
                gs < 3 ? kNames[gs] : "?",
                static_cast<unsigned long long>(count));
  }
  std::printf("records aggregated: %llu\n",
              static_cast<unsigned long long>(records));
  std::printf("distinct cells:     %llu\n",
              static_cast<unsigned long long>(inv.DistinctCells()));
  return 0;
}

void PrintSummary(const core::CellSummary& s) {
  std::printf("  records:            %llu\n",
              static_cast<unsigned long long>(s.record_count()));
  std::printf("  ships / trips:      %.0f / %.0f\n", s.ships().Estimate(),
              s.trips().Estimate());
  if (s.speed().count() > 0) {
    std::printf("  speed kn:           mean %.1f std %.1f p10/p50/p90 "
                "%.1f/%.1f/%.1f\n",
                s.speed().Mean(), s.speed().StdDev(),
                s.speed_percentiles().Quantile(0.1),
                s.speed_percentiles().Quantile(0.5),
                s.speed_percentiles().Quantile(0.9));
  }
  if (s.course_mean().count() > 0) {
    std::printf("  course deg:         mean* %.0f (R %.2f), mode bin "
                "[%g,%g)\n",
                s.course_mean().MeanDeg(),
                s.course_mean().ResultantLength(),
                s.course_bins().bin_lo(s.course_bins().ModeBin()),
                s.course_bins().bin_hi(s.course_bins().ModeBin()));
  }
  if (s.eto().count() > 0) {
    std::printf("  ETO h:              mean %.1f p50 %.1f\n",
                s.eto().Mean() / 3600,
                s.eto_percentiles().Quantile(0.5) / 3600);
    std::printf("  ATA h:              mean %.1f p50 %.1f\n",
                s.ata().Mean() / 3600,
                s.ata_percentiles().Quantile(0.5) / 3600);
  }
  const auto& ports = sim::PortDatabase::Global();
  for (const auto& dest : s.destinations().TopN(3)) {
    const auto port = ports.Find(static_cast<sim::PortId>(dest.key));
    std::printf("  top destination:    %s (%llu)\n",
                port.ok() ? (*port)->name.c_str() : "?",
                static_cast<unsigned long long>(dest.count));
  }
  for (const auto& origin : s.origins().TopN(3)) {
    const auto port = ports.Find(static_cast<sim::PortId>(origin.key));
    std::printf("  top origin:         %s (%llu)\n",
                port.ok() ? (*port)->name.c_str() : "?",
                static_cast<unsigned long long>(origin.count));
  }
}

int CmdQuery(const core::Inventory& inv, double lat, double lng) {
  const geo::LatLng p{lat, lng};
  if (!p.IsValid()) {
    std::fprintf(stderr, "invalid coordinates\n");
    return 1;
  }
  const hex::CellIndex cell = hex::LatLngToCell(p, inv.resolution());
  std::printf("cell %s at %s\n", hex::CellToString(cell).c_str(),
              hex::CellToLatLng(cell).ToString().c_str());
  const core::CellSummary* summary = inv.Cell(cell);
  if (summary == nullptr) {
    std::printf("  (no recorded traffic)\n");
    return 0;
  }
  PrintSummary(*summary);
  return 0;
}

int CmdTop(const core::Inventory& inv, int n) {
  std::vector<std::pair<uint64_t, hex::CellIndex>> ranked;
  for (const auto& [key, summary] : inv.summaries()) {
    if (key.grouping_set == 0) {
      ranked.push_back({summary.record_count(), key.cell});
    }
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("%-6s %-22s %-26s %s\n", "rank", "cell", "centre", "records");
  for (int i = 0; i < n && i < static_cast<int>(ranked.size()); ++i) {
    std::printf("%-6d %-22s %-26s %llu\n", i + 1,
                hex::CellToString(ranked[static_cast<size_t>(i)].second).c_str(),
                hex::CellToLatLng(ranked[static_cast<size_t>(i)].second)
                    .ToString()
                    .c_str(),
                static_cast<unsigned long long>(
                    ranked[static_cast<size_t>(i)].first));
  }
  return 0;
}

int CmdExport(const core::Inventory& inv) {
  std::printf(
      "cell,lat,lng,records,ships,trips,speed_mean,speed_p50,course_mean,"
      "course_concentration,eto_mean_s,ata_mean_s\n");
  for (const auto& [key, s] : inv.summaries()) {
    if (key.grouping_set != 0) continue;
    const geo::LatLng c = hex::CellToLatLng(key.cell);
    std::printf("%llu,%.6f,%.6f,%llu,%.0f,%.0f,%.2f,%.2f,%.1f,%.3f,%.0f,%.0f\n",
                static_cast<unsigned long long>(key.cell), c.lat_deg,
                c.lng_deg,
                static_cast<unsigned long long>(s.record_count()),
                s.ships().Estimate(), s.trips().Estimate(),
                s.speed().Mean(), s.speed_percentiles().Quantile(0.5),
                s.course_mean().MeanDeg(),
                s.course_mean().ResultantLength(), s.eto().Mean(),
                s.ata().Mean());
  }
  return 0;
}

// GeoJSON FeatureCollection of the (cell) grouping set: one hexagon
// polygon per cell with the headline statistics as properties. Feed it
// straight into QGIS / kepler.gl / geojson.io for the Figure 1 style
// visualisation.
int CmdGeoJson(const core::Inventory& inv, uint64_t min_records) {
  std::printf("{\"type\":\"FeatureCollection\",\"features\":[");
  bool first = true;
  for (const auto& [key, s] : inv.summaries()) {
    if (key.grouping_set != 0 || s.record_count() < min_records) continue;
    if (!first) std::printf(",");
    first = false;
    std::printf("{\"type\":\"Feature\",\"geometry\":{\"type\":\"Polygon\","
                "\"coordinates\":[[");
    const auto boundary = hex::CellToBoundary(key.cell);
    for (size_t i = 0; i <= boundary.size(); ++i) {
      const geo::LatLng& v = boundary[i % boundary.size()];
      std::printf("%s[%.6f,%.6f]", i == 0 ? "" : ",", v.lng_deg, v.lat_deg);
    }
    std::printf("]]},\"properties\":{\"records\":%llu,\"ships\":%.0f,"
                "\"speed_mean\":%.2f,\"course_mean\":%.1f,"
                "\"course_concentration\":%.3f}}",
                static_cast<unsigned long long>(s.record_count()),
                s.ships().Estimate(), s.speed().Mean(),
                s.course_mean().MeanDeg(),
                s.course_mean().ResultantLength());
  }
  std::printf("]}\n");
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const auto inventory = Load(argv[2]);
  if (!inventory.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", argv[2],
                 inventory.status().ToString().c_str());
    return 2;
  }
  if (std::strcmp(argv[1], "stats") == 0) return CmdStats(*inventory);
  if (std::strcmp(argv[1], "query") == 0 && argc == 5) {
    return CmdQuery(*inventory, std::atof(argv[3]), std::atof(argv[4]));
  }
  if (std::strcmp(argv[1], "top") == 0 && argc == 4) {
    return CmdTop(*inventory, std::atoi(argv[3]));
  }
  if (std::strcmp(argv[1], "export") == 0) return CmdExport(*inventory);
  if (std::strcmp(argv[1], "geojson") == 0) {
    const uint64_t min_records =
        argc >= 4 ? static_cast<uint64_t>(std::atoll(argv[3])) : 1;
    return CmdGeoJson(*inventory, min_records);
  }
  return Usage();
}

}  // namespace
}  // namespace pol

int main(int argc, char** argv) { return pol::Main(argc, argv); }
