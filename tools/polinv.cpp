// polinv — command-line inspector for saved Patterns-of-Life inventory
// files (*.polinv).
//
//   polinv stats <file>                    header, per-grouping-set counts,
//                                          snapshot index sizes
//   polinv query <file> <lat> <lng>        Table-3 summary of the cell
//   polinv route <file> <o> <d> <segment>  corridor cells of a route key
//                                          (indexed CellsForRoute path)
//   polinv top <file> <n>                  n busiest cells
//   polinv export <file>                   CSV of the (cell) grouping set
//   polinv geojson <file> [min_records]    cell polygons as GeoJSON
//   polinv snapshots <store-dir>           list a snapshot store's
//                                          generations: size, CRC status,
//                                          seal stats, cold-start pick
//   polinv report <file.json>              pretty-print a run report
//   polinv watch <metrics.txt> [opts]      tail an OpenMetrics export
//                                          (ServingGuard telemetry
//                                          exporter output) as a live
//                                          one-screen serving table
//
// Every inventory command queries through core::InventoryQuery against
// a sealed InventorySnapshot — the same read path a serving process
// uses — never the raw summary map.
//
// Exit code 0 on success, 1 on usage errors, 2 on IO/corruption.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "core/inventory.h"
#include "core/inventory_snapshot.h"
#include "core/snapshot_codec.h"
#include "flow/stage.h"
#include "hexgrid/hexgrid.h"
#include "obs/json.h"
#include "obs/openmetrics.h"
#include "obs/report.h"
#include "sim/ports.h"
#include "store/snapshot_store.h"

namespace pol {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  polinv stats   <file.polinv>\n"
               "  polinv query   <file.polinv> <lat> <lng>\n"
               "  polinv route   <file.polinv> <origin> <dest> <segment>\n"
               "  polinv top     <file.polinv> <n>\n"
               "  polinv export  <file.polinv>\n"
               "  polinv geojson <file.polinv> [min_records]\n"
               "  polinv snapshots <store-dir>\n"
               "  polinv report  <report.json>\n"
               "  polinv watch   <metrics.txt> [--interval=SECONDS] "
               "[--iterations=N] [--once] [--no-clear]\n");
  return 1;
}

Result<core::Inventory> Load(const char* path) {
  return core::Inventory::LoadFromFile(path);
}

int CmdStats(const core::InventorySnapshot& inv) {
  std::printf("resolution:        %d (mean cell ~%.1f km^2)\n",
              inv.resolution(), hex::MeanCellAreaKm2(inv.resolution()));
  std::printf("summaries:         %zu\n", inv.size());
  uint64_t records = 0;
  inv.VisitGroupingSet(core::GroupingSet::kCell,
                       [&records](const core::GroupKey&,
                                  const core::CellSummary& summary) {
                         records += summary.record_count();
                       });
  static const char* kNames[] = {"(cell)", "(cell,type)",
                                 "(cell,origin,destination,type)"};
  const core::InventorySnapshotStats& stats = inv.stats();
  for (int gs = 0; gs < core::kNumGroupingSets; ++gs) {
    std::printf("  grouping set %d %-32s %llu\n", gs, kNames[gs],
                static_cast<unsigned long long>(
                    stats.summaries_per_set[static_cast<size_t>(gs)]));
  }
  std::printf("records aggregated: %llu\n",
              static_cast<unsigned long long>(records));
  std::printf("distinct cells:     %llu\n",
              static_cast<unsigned long long>(inv.DistinctCells()));
  std::printf("snapshot indexes:   %llu route keys over %llu cells, "
              "%llu cells with per-type summaries (sealed in %.3f ms)\n",
              static_cast<unsigned long long>(stats.route_index_routes),
              static_cast<unsigned long long>(stats.route_index_cells),
              static_cast<unsigned long long>(stats.segment_index_cells),
              stats.seal_seconds * 1e3);
  return 0;
}

void PrintSummary(const core::CellSummary& s) {
  std::printf("  records:            %llu\n",
              static_cast<unsigned long long>(s.record_count()));
  std::printf("  ships / trips:      %.0f / %.0f\n", s.ships().Estimate(),
              s.trips().Estimate());
  if (s.speed().count() > 0) {
    std::printf("  speed kn:           mean %.1f std %.1f p10/p50/p90 "
                "%.1f/%.1f/%.1f\n",
                s.speed().Mean(), s.speed().StdDev(),
                s.speed_percentiles().Quantile(0.1),
                s.speed_percentiles().Quantile(0.5),
                s.speed_percentiles().Quantile(0.9));
  }
  if (s.course_mean().count() > 0) {
    std::printf("  course deg:         mean* %.0f (R %.2f), mode bin "
                "[%g,%g)\n",
                s.course_mean().MeanDeg(),
                s.course_mean().ResultantLength(),
                s.course_bins().bin_lo(s.course_bins().ModeBin()),
                s.course_bins().bin_hi(s.course_bins().ModeBin()));
  }
  if (s.eto().count() > 0) {
    std::printf("  ETO h:              mean %.1f p50 %.1f\n",
                s.eto().Mean() / 3600,
                s.eto_percentiles().Quantile(0.5) / 3600);
    std::printf("  ATA h:              mean %.1f p50 %.1f\n",
                s.ata().Mean() / 3600,
                s.ata_percentiles().Quantile(0.5) / 3600);
  }
  const auto& ports = sim::PortDatabase::Global();
  for (const auto& dest : s.destinations().TopN(3)) {
    const auto port = ports.Find(static_cast<sim::PortId>(dest.key));
    std::printf("  top destination:    %s (%llu)\n",
                port.ok() ? (*port)->name.c_str() : "?",
                static_cast<unsigned long long>(dest.count));
  }
  for (const auto& origin : s.origins().TopN(3)) {
    const auto port = ports.Find(static_cast<sim::PortId>(origin.key));
    std::printf("  top origin:         %s (%llu)\n",
                port.ok() ? (*port)->name.c_str() : "?",
                static_cast<unsigned long long>(origin.count));
  }
}

int CmdQuery(const core::InventoryQuery& inv, double lat, double lng) {
  const geo::LatLng p{lat, lng};
  if (!p.IsValid()) {
    std::fprintf(stderr, "invalid coordinates\n");
    return 1;
  }
  const hex::CellIndex cell = hex::LatLngToCell(p, inv.resolution());
  std::printf("cell %s at %s\n", hex::CellToString(cell).c_str(),
              hex::CellToLatLng(cell).ToString().c_str());
  const core::CellSummary* summary = inv.Cell(cell);
  if (summary == nullptr) {
    std::printf("  (no recorded traffic)\n");
    return 0;
  }
  PrintSummary(*summary);
  return 0;
}

int CmdTop(const core::InventoryQuery& inv, int n) {
  std::vector<std::pair<uint64_t, hex::CellIndex>> ranked;
  inv.VisitGroupingSet(core::GroupingSet::kCell,
                       [&ranked](const core::GroupKey& key,
                                 const core::CellSummary& summary) {
                         ranked.push_back({summary.record_count(), key.cell});
                       });
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("%-6s %-22s %-26s %s\n", "rank", "cell", "centre", "records");
  for (int i = 0; i < n && i < static_cast<int>(ranked.size()); ++i) {
    std::printf("%-6d %-22s %-26s %llu\n", i + 1,
                hex::CellToString(ranked[static_cast<size_t>(i)].second).c_str(),
                hex::CellToLatLng(ranked[static_cast<size_t>(i)].second)
                    .ToString()
                    .c_str(),
                static_cast<unsigned long long>(
                    ranked[static_cast<size_t>(i)].first));
  }
  return 0;
}

// Accepts a segment name ("container", case-sensitive as printed by
// ais::MarketSegmentName) or its numeric value.
bool ParseSegment(const char* arg, ais::MarketSegment* out) {
  for (int i = 0; i < ais::kNumMarketSegments; ++i) {
    const auto segment = static_cast<ais::MarketSegment>(i);
    if (ais::MarketSegmentName(segment) == arg) {
      *out = segment;
      return true;
    }
  }
  char* end = nullptr;
  const long value = std::strtol(arg, &end, 10);
  if (end == arg || *end != '\0' || value < 0 ||
      value >= ais::kNumMarketSegments) {
    return false;
  }
  *out = static_cast<ais::MarketSegment>(value);
  return true;
}

int CmdRoute(const core::InventoryQuery& inv, const char* origin_arg,
             const char* dest_arg, const char* segment_arg) {
  const auto origin = static_cast<sim::PortId>(std::atoi(origin_arg));
  const auto destination = static_cast<sim::PortId>(std::atoi(dest_arg));
  ais::MarketSegment segment;
  if (!ParseSegment(segment_arg, &segment)) {
    std::fprintf(stderr, "unknown segment '%s' (name or 0..%d)\n", segment_arg,
                 ais::kNumMarketSegments - 1);
    return 1;
  }
  const std::vector<hex::CellIndex> cells =
      inv.CellsForRoute(origin, destination, segment);
  std::printf("route %u -> %u [%.*s]: %zu corridor cells\n",
              static_cast<unsigned>(origin), static_cast<unsigned>(destination),
              static_cast<int>(ais::MarketSegmentName(segment).size()),
              ais::MarketSegmentName(segment).data(), cells.size());
  std::printf("%-22s %-26s %-10s %s\n", "cell", "centre", "records",
              "speed_mean");
  for (const hex::CellIndex cell : cells) {
    const core::CellSummary* s =
        inv.CellRouteType(cell, origin, destination, segment);
    if (s == nullptr) {
      // Answered via the reversed-pair fallback: the summaries live
      // under the opposite key orientation.
      s = inv.CellRouteType(cell, destination, origin, segment);
    }
    std::printf("%-22s %-26s %-10llu %.2f\n", hex::CellToString(cell).c_str(),
                hex::CellToLatLng(cell).ToString().c_str(),
                static_cast<unsigned long long>(s ? s->record_count() : 0),
                s ? s->speed().Mean() : 0.0);
  }
  return 0;
}

int CmdExport(const core::InventoryQuery& inv) {
  std::printf(
      "cell,lat,lng,records,ships,trips,speed_mean,speed_p50,course_mean,"
      "course_concentration,eto_mean_s,ata_mean_s\n");
  inv.VisitGroupingSet(
      core::GroupingSet::kCell,
      [](const core::GroupKey& key, const core::CellSummary& s) {
        const geo::LatLng c = hex::CellToLatLng(key.cell);
        std::printf(
            "%llu,%.6f,%.6f,%llu,%.0f,%.0f,%.2f,%.2f,%.1f,%.3f,%.0f,%.0f\n",
            static_cast<unsigned long long>(key.cell), c.lat_deg, c.lng_deg,
            static_cast<unsigned long long>(s.record_count()),
            s.ships().Estimate(), s.trips().Estimate(), s.speed().Mean(),
            s.speed_percentiles().Quantile(0.5), s.course_mean().MeanDeg(),
            s.course_mean().ResultantLength(), s.eto().Mean(), s.ata().Mean());
      });
  return 0;
}

// GeoJSON FeatureCollection of the (cell) grouping set: one hexagon
// polygon per cell with the headline statistics as properties. Feed it
// straight into QGIS / kepler.gl / geojson.io for the Figure 1 style
// visualisation.
int CmdGeoJson(const core::InventoryQuery& inv, uint64_t min_records) {
  std::printf("{\"type\":\"FeatureCollection\",\"features\":[");
  bool first = true;
  inv.VisitGroupingSet(
      core::GroupingSet::kCell,
      [min_records, &first](const core::GroupKey& key,
                            const core::CellSummary& s) {
        if (s.record_count() < min_records) return;
        if (!first) std::printf(",");
        first = false;
        std::printf(
            "{\"type\":\"Feature\",\"geometry\":{\"type\":\"Polygon\","
            "\"coordinates\":[[");
        const auto boundary = hex::CellToBoundary(key.cell);
        for (size_t i = 0; i <= boundary.size(); ++i) {
          const geo::LatLng& v = boundary[i % boundary.size()];
          std::printf("%s[%.6f,%.6f]", i == 0 ? "" : ",", v.lng_deg,
                      v.lat_deg);
        }
        std::printf(
            "]]},\"properties\":{\"records\":%llu,\"ships\":%.0f,"
            "\"speed_mean\":%.2f,\"course_mean\":%.1f,"
            "\"course_concentration\":%.3f}}",
            static_cast<unsigned long long>(s.record_count()),
            s.ships().Estimate(), s.speed().Mean(),
            s.course_mean().MeanDeg(), s.course_mean().ResultantLength());
      });
  std::printf("]}\n");
  return 0;
}

// --- polinv watch -----------------------------------------------------------
// Tails the OpenMetrics file the ServingGuard telemetry exporter
// atomically rewrites and renders the serving_* samples as one screen:
// QPS / error / shed rates, per-class latency quantiles, SLO burn
// rates, breaker and snapshot state, query-log totals.

double WatchValue(const std::vector<obs::OpenMetricsSample>& samples,
                  std::string_view name, double fallback = 0.0) {
  const obs::OpenMetricsSample* sample = obs::FindSample(samples, name);
  return sample != nullptr ? sample->value : fallback;
}

// Humanizes a latency gauge carried in microseconds.
std::string FormatMicros(double micros) {
  char buffer[32];
  if (micros < 1000.0) {
    std::snprintf(buffer, sizeof(buffer), "%.0fus", micros);
  } else if (micros < 1e6) {
    std::snprintf(buffer, sizeof(buffer), "%.2fms", micros / 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.3fs", micros / 1e6);
  }
  return buffer;
}

void RenderWatchFrame(const std::vector<obs::OpenMetricsSample>& samples,
                      const char* path, uint64_t tick) {
  std::printf("serving telemetry  %s  (tick %llu)\n", path,
              static_cast<unsigned long long>(tick));
  std::printf("qps %.1f   error %.1f%%   shed %.1f%%\n",
              WatchValue(samples, "serving_query_qps_milli") / 1e3,
              WatchValue(samples, "serving_query_error_rate_milli") / 10.0,
              WatchValue(samples, "serving_query_shed_rate_milli") / 10.0);

  std::printf("\n%-14s %10s %10s %10s\n", "latency", "p50", "p95", "p99");
  static const char* kClasses[] = {"interactive", "batch"};
  for (const char* cls : kClasses) {
    const std::string base = std::string("serving_query_") + cls;
    std::printf("%-14s %10s %10s %10s\n", cls,
                FormatMicros(WatchValue(samples, base + "_p50_us")).c_str(),
                FormatMicros(WatchValue(samples, base + "_p95_us")).c_str(),
                FormatMicros(WatchValue(samples, base + "_p99_us")).c_str());
  }

  // SLOs are discovered from the *_burning gauges so custom objectives
  // show up without polinv knowing their names.
  std::printf("\n%-18s %8s %10s %10s %9s\n", "slo", "burning", "burn_fast",
              "burn_slow", "breaches");
  for (const obs::OpenMetricsSample& sample : samples) {
    const std::string_view name = sample.name;
    const std::string_view prefix = "serving_slo_";
    const std::string_view suffix = "_burning";
    if (name.size() <= prefix.size() + suffix.size() ||
        name.substr(0, prefix.size()) != prefix ||
        name.substr(name.size() - suffix.size()) != suffix) {
      continue;
    }
    const std::string slo(
        name.substr(prefix.size(),
                    name.size() - prefix.size() - suffix.size()));
    const std::string base = std::string(prefix) + slo;
    std::printf("%-18s %8s %10.2f %10.2f %9.0f\n", slo.c_str(),
                static_cast<long long>(sample.value) != 0 ? "YES" : "no",
                WatchValue(samples, base + "_burn_fast_milli") / 1e3,
                WatchValue(samples, base + "_burn_slow_milli") / 1e3,
                WatchValue(samples, base + "_breaches_total"));
  }

  static const char* kBreakerNames[] = {"closed", "open", "half-open"};
  const int breaker = static_cast<int>(
      WatchValue(samples, "serving_breaker_state"));
  std::printf(
      "\nbreaker %s   degraded %s   snapshot id %.0f age %.0fms\n",
      breaker >= 0 && breaker <= 2 ? kBreakerNames[breaker] : "?",
      static_cast<long long>(WatchValue(samples, "serving_degraded")) != 0
          ? "YES"
          : "no",
      WatchValue(samples, "serving_snapshot_active_id"),
      WatchValue(samples, "serving_snapshot_age_ms"));
  std::printf(
      "admitted %.0f   queued %.0f   shed %.0f   deadline_exceeded %.0f\n",
      WatchValue(samples, "serving_admitted_total"),
      WatchValue(samples, "serving_queued_total"),
      WatchValue(samples, "serving_shed_total"),
      WatchValue(samples, "serving_deadline_exceeded_total"));
  std::printf("querylog %.0f events: %.0f ok, %.0f errors, %.0f slow\n",
              WatchValue(samples, "serving_querylog_events"),
              WatchValue(samples, "serving_querylog_ok"),
              WatchValue(samples, "serving_querylog_errors"),
              WatchValue(samples, "serving_querylog_slow"));
}

int CmdWatch(int argc, char** argv) {
  const char* path = nullptr;
  double interval_seconds = 1.0;
  uint64_t iterations = 0;  // 0 = until interrupted.
  bool clear_screen = true;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--interval=", 11) == 0) {
      interval_seconds = std::atof(arg + 11);
    } else if (std::strncmp(arg, "--iterations=", 13) == 0) {
      iterations = static_cast<uint64_t>(std::atoll(arg + 13));
    } else if (std::strcmp(arg, "--once") == 0) {
      iterations = 1;
    } else if (std::strcmp(arg, "--no-clear") == 0) {
      clear_screen = false;
    } else if (path == nullptr) {
      path = arg;
    } else {
      return Usage();
    }
  }
  if (path == nullptr) return Usage();
  if (!(interval_seconds > 0.0)) interval_seconds = 1.0;

  int exit_code = 0;
  for (uint64_t tick = 1; iterations == 0 || tick <= iterations; ++tick) {
    std::string text;
    std::string error;
    if (clear_screen) std::printf("\033[H\033[2J");
    if (obs::ReadTextFile(path, &text, &error)) {
      RenderWatchFrame(obs::ParseOpenMetrics(text), path, tick);
      exit_code = 0;
    } else {
      // The exporter may not have written its first file yet; keep
      // polling. Exit 2 only if a bounded run never saw one.
      std::printf("waiting for %s (%s)\n", path, error.c_str());
      exit_code = 2;
    }
    std::fflush(stdout);
    if (iterations != 0 && tick == iterations) break;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(interval_seconds));
  }
  return exit_code;
}

// --- polinv snapshots -------------------------------------------------------
// Lists a snapshot-store directory (store::SnapshotStore): one line per
// generation with its size, validation status and seal-time stats, the
// advisory MANIFEST value, and — the line operators actually want —
// which generation a cold start (OpenLatest with corrupt-generation
// fallback) would serve.
int CmdSnapshots(const char* dir) {
  const store::SnapshotStore snapshot_store(
      store::SnapshotStoreOptions{dir, /*keep=*/3});
  const std::vector<uint64_t> generations = snapshot_store.ListGenerations();
  std::printf("snapshot store %s: %llu generation(s)\n", dir,
              static_cast<unsigned long long>(generations.size()));
  const auto manifest = snapshot_store.ManifestCurrent();
  if (manifest.ok()) {
    std::printf("MANIFEST current:  %llu (advisory)\n",
                static_cast<unsigned long long>(*manifest));
  } else {
    std::printf("MANIFEST:          %s\n",
                manifest.status().ToString().c_str());
  }
  if (generations.empty()) return 2;
  uint64_t pick = 0;
  const auto latest = core::OpenLatestSnapshot(snapshot_store, &pick);
  if (latest.ok()) {
    std::printf("cold start serves: %llu\n",
                static_cast<unsigned long long>(pick));
  } else {
    std::printf("cold start serves: NONE (%s)\n",
                latest.status().ToString().c_str());
  }
  for (const uint64_t generation : generations) {
    const std::string path = snapshot_store.GenerationPath(generation);
    std::error_code ec;
    const uint64_t bytes = std::filesystem::file_size(path, ec);
    std::printf("gen %llu: %llu bytes",
                static_cast<unsigned long long>(generation),
                static_cast<unsigned long long>(ec ? 0 : bytes));
    const auto opened = snapshot_store.OpenGeneration(generation);
    if (!opened.ok()) {
      std::printf(", %s\n", opened.status().ToString().c_str());
      continue;
    }
    const auto meta = core::DecodeSnapshotMeta(opened->view);
    if (!meta.ok()) {
      std::printf(", valid container, %s\n",
                  meta.status().ToString().c_str());
      continue;
    }
    uint64_t summaries = 0;
    for (const uint64_t count : meta->stats.summaries_per_set) {
      summaries += count;
    }
    std::printf(
        ", ok, resolution %d, %llu summaries, %llu routes, seal seq %llu, "
        "sealed in %.3fs%s\n",
        meta->resolution, static_cast<unsigned long long>(summaries),
        static_cast<unsigned long long>(meta->stats.route_index_routes),
        static_cast<unsigned long long>(meta->stats.seal_sequence),
        meta->stats.seal_seconds,
        latest.ok() && generation == pick ? "  [cold-start pick]" : "");
  }
  return latest.ok() ? 0 : 2;
}

// Pretty-prints a pol.run_report/1 document (see core/run_report.h):
// status and wall clock, the per-stage table, coverage, checkpoint,
// serving health, SLO burn rates, quarantine activity, and a metrics
// digest.
int CmdReport(const char* path) {
  std::string text;
  std::string error;
  if (!obs::ReadTextFile(path, &text, &error)) {
    std::fprintf(stderr, "cannot read %s: %s\n", path, error.c_str());
    return 2;
  }
  obs::Json report;
  if (!obs::Json::Parse(text, &report, &error)) {
    std::fprintf(stderr, "cannot parse %s: %s\n", path, error.c_str());
    return 2;
  }
  const std::string schema = report.GetString("schema");
  if (schema != "pol.run_report/1") {
    std::fprintf(stderr, "unrecognized report schema '%s'\n", schema.c_str());
    return 2;
  }

  if (const obs::Json* status = report.Find("status")) {
    const bool ok = status->Find("ok") != nullptr &&
                    status->Find("ok")->AsBool();
    std::printf("status:             %s", status->GetString("code").c_str());
    const std::string message = status->GetString("message");
    if (!ok && !message.empty()) std::printf(" (%s)", message.c_str());
    std::printf("\n");
  }
  std::printf("wall seconds:       %.3f\n", report.GetDouble("wall_seconds"));
  std::printf("records aggregated: %llu\n",
              static_cast<unsigned long long>(
                  report.GetUint64("aggregated_records")));

  if (const obs::Json* coverage = report.Find("coverage")) {
    std::printf(
        "coverage:           %llu/%llu chunks folded, %llu quarantined "
        "(%llu records), %llu retries\n",
        static_cast<unsigned long long>(coverage->GetUint64("chunks_folded")),
        static_cast<unsigned long long>(coverage->GetUint64("chunks_total")),
        static_cast<unsigned long long>(
            coverage->GetUint64("chunks_quarantined")),
        static_cast<unsigned long long>(
            coverage->GetUint64("records_quarantined")),
        static_cast<unsigned long long>(coverage->GetUint64("retries")));
  }
  if (const obs::Json* ckpt = report.Find("checkpoint")) {
    if (ckpt->Find("enabled") != nullptr && ckpt->Find("enabled")->AsBool()) {
      std::printf(
          "checkpoint:         %s%llu written, %llu failed, dir %s\n",
          ckpt->Find("resumed") != nullptr && ckpt->Find("resumed")->AsBool()
              ? "resumed, "
              : "",
          static_cast<unsigned long long>(ckpt->GetUint64("written")),
          static_cast<unsigned long long>(ckpt->GetUint64("failures")),
          ckpt->GetString("directory").c_str());
    } else {
      std::printf("checkpoint:         disabled\n");
    }
  }
  if (const obs::Json* serving = report.Find("serving")) {
    const bool degraded = serving->Find("degraded") != nullptr &&
                          serving->Find("degraded")->AsBool();
    std::printf(
        "serving:            %s, breaker %s, snapshot age %llu refreshes\n",
        degraded ? "DEGRADED" : "healthy",
        serving->GetString("breaker_state").c_str(),
        static_cast<unsigned long long>(
            serving->GetUint64("snapshot_age_refreshes")));
  }
  if (const obs::Json* slos = report.Find("serving_slo")) {
    for (const auto& [name, slo] : slos->members()) {
      const bool burning = slo.Find("burning") != nullptr &&
                           slo.Find("burning")->AsBool();
      std::printf(
          "  slo %-16s %s  burn fast %.2f / slow %.2f  breaches %llu\n",
          name.c_str(), burning ? "BURNING" : "ok",
          slo.GetDouble("burn_fast_milli") / 1e3,
          slo.GetDouble("burn_slow_milli") / 1e3,
          static_cast<unsigned long long>(slo.GetUint64("breaches")));
    }
  }

  if (const obs::Json* store_block = report.Find("store")) {
    const uint64_t touched = store_block->GetUint64("publishes") +
                             store_block->GetUint64("publish_failures") +
                             store_block->GetUint64("opens") +
                             store_block->GetUint64("open_failures");
    if (touched > 0) {
      std::printf(
          "store:              %llu publishes (%llu failed), %llu opens, "
          "%llu fallbacks, %llu generations, latest %llu\n",
          static_cast<unsigned long long>(
              store_block->GetUint64("publishes")),
          static_cast<unsigned long long>(
              store_block->GetUint64("publish_failures")),
          static_cast<unsigned long long>(store_block->GetUint64("opens")),
          static_cast<unsigned long long>(
              store_block->GetUint64("fallbacks")),
          static_cast<unsigned long long>(
              store_block->GetUint64("generations")),
          static_cast<unsigned long long>(
              store_block->GetUint64("latest_generation")));
    }
  }

  // Rebuild flow::StageMetrics from the report so the exact table the
  // pipeline prints is reproduced from the file.
  if (const obs::Json* stages = report.Find("stages")) {
    std::vector<flow::StageMetrics> metrics;
    for (const obs::Json& stage : stages->items()) {
      flow::StageMetrics m;
      m.name = stage.GetString("name");
      m.chunks = stage.GetUint64("chunks");
      m.records_in = stage.GetUint64("records_in");
      m.records_out = stage.GetUint64("records_out");
      m.dropped = stage.GetUint64("dropped");
      m.peak_partition = static_cast<size_t>(
          stage.GetUint64("peak_partition"));
      m.wall_seconds = stage.GetDouble("wall_seconds");
      m.failures = stage.GetUint64("failures");
      if (const obs::Json* by_reason = stage.Find("failures_by_reason")) {
        for (const auto& [reason, count] : by_reason->members()) {
          m.failures_by_reason[reason] = count.AsUint64();
        }
      }
      metrics.push_back(std::move(m));
    }
    std::printf("\n%s", flow::StageMetricsTable(metrics).c_str());
  }

  if (const obs::Json* quarantined = report.Find("quarantined")) {
    if (quarantined->size() > 0) {
      std::printf("\nquarantined chunks:\n");
      for (const obs::Json& entry : quarantined->items()) {
        std::printf("  chunk %llu: %llu records, %llu attempts, %s: %s\n",
                    static_cast<unsigned long long>(
                        entry.GetUint64("chunk_index")),
                    static_cast<unsigned long long>(
                        entry.GetUint64("records")),
                    static_cast<unsigned long long>(
                        entry.GetUint64("attempts")),
                    entry.GetString("code").c_str(),
                    entry.GetString("message").c_str());
      }
    }
  }

  if (const obs::Json* metrics = report.Find("metrics")) {
    const obs::Json* counters = metrics->Find("counters");
    if (counters != nullptr && counters->size() > 0) {
      std::printf("\ncounters:\n");
      for (const auto& [name, value] : counters->members()) {
        std::printf("  %-40s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(value.AsUint64()));
      }
    }
    const obs::Json* histograms = metrics->Find("histograms");
    if (histograms != nullptr && histograms->size() > 0) {
      std::printf("\nhistograms:\n");
      for (const auto& [name, h] : histograms->members()) {
        const uint64_t count = h.GetUint64("count");
        std::printf("  %-40s n=%llu mean=%.6fs min=%.6fs max=%.6fs",
                    name.c_str(), static_cast<unsigned long long>(count),
                    count > 0 ? h.GetDouble("sum_seconds") /
                                    static_cast<double>(count)
                              : 0.0,
                    h.GetDouble("min_seconds"), h.GetDouble("max_seconds"));
        // Samples past the top bucket boundary: the bucket array
        // saturated, so the quantile math is bounded by observed max.
        const uint64_t overflow = h.GetUint64("overflow_count");
        if (overflow > 0) {
          std::printf(" overflow=%llu",
                      static_cast<unsigned long long>(overflow));
        }
        std::printf("\n");
      }
    }
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 3) return Usage();
  // `report` reads a JSON run report and `watch` an OpenMetrics
  // export, not an inventory file.
  if (std::strcmp(argv[1], "report") == 0) return CmdReport(argv[2]);
  if (std::strcmp(argv[1], "watch") == 0) return CmdWatch(argc, argv);
  // `snapshots` inspects a snapshot-store directory, not an inventory.
  if (std::strcmp(argv[1], "snapshots") == 0) return CmdSnapshots(argv[2]);
  const auto inventory = Load(argv[2]);
  if (!inventory.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", argv[2],
                 inventory.status().ToString().c_str());
    return 2;
  }
  // Seal once and serve every command from the immutable snapshot.
  const std::shared_ptr<const core::InventorySnapshot> snapshot =
      inventory->Seal();
  if (std::strcmp(argv[1], "stats") == 0) return CmdStats(*snapshot);
  if (std::strcmp(argv[1], "query") == 0 && argc == 5) {
    return CmdQuery(*snapshot, std::atof(argv[3]), std::atof(argv[4]));
  }
  if (std::strcmp(argv[1], "route") == 0 && argc == 6) {
    return CmdRoute(*snapshot, argv[3], argv[4], argv[5]);
  }
  if (std::strcmp(argv[1], "top") == 0 && argc == 4) {
    return CmdTop(*snapshot, std::atoi(argv[3]));
  }
  if (std::strcmp(argv[1], "export") == 0) return CmdExport(*snapshot);
  if (std::strcmp(argv[1], "geojson") == 0) {
    const uint64_t min_records =
        argc >= 4 ? static_cast<uint64_t>(std::atoll(argv[3])) : 1;
    return CmdGeoJson(*snapshot, min_records);
  }
  return Usage();
}

}  // namespace
}  // namespace pol

int main(int argc, char** argv) { return pol::Main(argc, argv); }
