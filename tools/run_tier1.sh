#!/usr/bin/env bash
# Tier-1 verification plus the correctness tooling passes: sanitizers
# over the concurrency-heavy flow/core tests, the project linter, and a
# format check for touched files.
#
#   tools/run_tier1.sh            # tier-1: configure, build, ctest
#   tools/run_tier1.sh --asan     # + ASan build of flow/core tests
#   tools/run_tier1.sh --ubsan    # + UBSan build of flow/core tests
#   tools/run_tier1.sh --tsan     # + TSan build of flow/core tests
#   tools/run_tier1.sh --sanitize # all three sanitizers
#   tools/run_tier1.sh --faults   # + fail-points build, fault-injection suite
#   tools/run_tier1.sh --lint     # + build and run pollint over the tree
#   tools/run_tier1.sh --format   # + clang-format check of touched files
#   tools/run_tier1.sh --obs      # + obs tests, POL_OBS=OFF build, overhead bench
#
# Flags combine; plain tier-1 runtime is unchanged when none are given.
# Run from anywhere; paths resolve relative to the repo root.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"

# The tests that exercise the thread pool, the stage runner, and the
# chunked folding path — the ones worth the sanitizer rebuild. The
# stress tests exist specifically to give TSan interleavings to bite on.
SAN_TESTS="threadpool_test|dataset_test|concurrency_stress_test|pipeline_test|pipeline_property_test|pipeline_chunked_test|cleaning_test|extractor_test|inventory_test|serving_inventory_test"

# The failure-containment suite: these run in every build, but only the
# faults preset (POL_FAILPOINTS=ON) un-skips the armed kill-and-resume
# scenarios.
FAULT_TESTS="failpoint_test|nmea_quarantine_test|checkpoint_test|fault_injection_test|concurrency_stress_test|status_test"

# The observability suite: the obs unit tests, the report/trace
# integration test, and the concurrency stress test that hammers the
# registry. The same set must pass with the layer compiled to no-ops.
OBS_TESTS="json_test|metrics_test|trace_test|run_report_test|logging_test|concurrency_stress_test"

run_asan=0
run_ubsan=0
run_tsan=0
run_faults=0
run_lint=0
run_format=0
run_obs=0
for arg in "$@"; do
  case "$arg" in
    --asan) run_asan=1 ;;
    --ubsan) run_ubsan=1 ;;
    --tsan) run_tsan=1 ;;
    --sanitize) run_asan=1; run_ubsan=1; run_tsan=1 ;;
    --faults) run_faults=1 ;;
    --lint) run_lint=1 ;;
    --format) run_format=1 ;;
    --obs) run_obs=1 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier-1: RelWithDebInfo build + full ctest =="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$JOBS"
(cd "$ROOT/build" && ctest --output-on-failure -j "$JOBS")

sanitizer_pass() {
  local preset="$1"
  echo "== sanitizer pass: $preset (flow + core tests) =="
  cmake --preset "$preset" -S "$ROOT"
  # Build only the targeted tests: the sanitizer rebuild is slow and the
  # goal is the concurrency/memory paths, not the whole binary set.
  local targets
  targets="$(echo "$SAN_TESTS" | tr '|' ' ')"
  # shellcheck disable=SC2086
  cmake --build "$ROOT/build-$preset" -j "$JOBS" --target $targets
  (cd "$ROOT/build-$preset" &&
     TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
     ctest --output-on-failure -j "$JOBS" -R "^($SAN_TESTS)\$")
}

faults_pass() {
  echo "== faults pass: POL_FAILPOINTS build + fault-injection suite =="
  cmake --preset faults -S "$ROOT"
  local targets
  targets="$(echo "$FAULT_TESTS" | tr '|' ' ')"
  # shellcheck disable=SC2086
  cmake --build "$ROOT/build-faults" -j "$JOBS" --target $targets
  (cd "$ROOT/build-faults" &&
     ctest --output-on-failure -j "$JOBS" -R "^($FAULT_TESTS)\$")
}

lint_pass() {
  echo "== lint pass: pollint over src/ bench/ examples/ tools/ =="
  cmake --build "$ROOT/build" -j "$JOBS" --target pollint
  "$ROOT/build/tools/pollint" --root "$ROOT"
  echo "pollint: clean"
}

obs_pass() {
  echo "== obs pass: observability tests, POL_OBS=OFF build, overhead bench =="
  local targets
  targets="$(echo "$OBS_TESTS" | tr '|' ' ')"
  # shellcheck disable=SC2086
  cmake --build "$ROOT/build" -j "$JOBS" --target $targets bench_obs_overhead
  (cd "$ROOT/build" && ctest --output-on-failure -j "$JOBS" -R "^($OBS_TESTS)\$")
  # The layer must compile to no-ops and the same suite must still pass.
  cmake -B "$ROOT/build-noobs" -S "$ROOT" -DPOL_OBS=OFF
  # shellcheck disable=SC2086
  cmake --build "$ROOT/build-noobs" -j "$JOBS" --target $targets
  (cd "$ROOT/build-noobs" &&
     ctest --output-on-failure -j "$JOBS" -R "^($OBS_TESTS)\$")
  # Overhead bar: instrumentation on (idle recorder) within 2% of a
  # trace-recording run; the bench exits non-zero past the threshold.
  "$ROOT/build/bench/bench_obs_overhead"
  echo "obs: clean"
}

format_pass() {
  echo "== format pass: clang-format on files touched vs origin =="
  if ! command -v clang-format >/dev/null 2>&1; then
    echo "clang-format not installed; skipping format pass" >&2
    return 0
  fi
  # Only verify new/touched files — the tree is not wholesale-formatted.
  local base
  base="$(git -C "$ROOT" merge-base HEAD origin/main 2>/dev/null ||
          git -C "$ROOT" rev-parse 'HEAD~1' 2>/dev/null || echo '')"
  local files
  files="$( (git -C "$ROOT" diff --name-only ${base:+"$base"} --;
             git -C "$ROOT" diff --name-only --cached;
             git -C "$ROOT" ls-files --others --exclude-standard) |
           sort -u | grep -E '\.(h|cc|cpp)$' || true)"
  if [ -z "$files" ]; then
    echo "no touched C++ files; nothing to check"
    return 0
  fi
  local bad=0
  for f in $files; do
    [ -f "$ROOT/$f" ] || continue
    if ! clang-format --dry-run -Werror "$ROOT/$f" >/dev/null 2>&1; then
      echo "needs formatting: $f"
      bad=1
    fi
  done
  [ "$bad" -eq 0 ] || { echo "format pass failed" >&2; return 1; }
  echo "format: clean"
}

[ "$run_asan" -eq 1 ] && sanitizer_pass asan
[ "$run_ubsan" -eq 1 ] && sanitizer_pass ubsan
[ "$run_tsan" -eq 1 ] && sanitizer_pass tsan
[ "$run_faults" -eq 1 ] && faults_pass
[ "$run_lint" -eq 1 ] && lint_pass
[ "$run_format" -eq 1 ] && format_pass
[ "$run_obs" -eq 1 ] && obs_pass

echo "== run_tier1.sh: all requested passes green =="
