#!/usr/bin/env bash
# Tier-1 verification, plus an optional sanitizer pass over the
# concurrency-heavy flow/core tests.
#
#   tools/run_tier1.sh            # tier-1: configure, build, ctest
#   tools/run_tier1.sh --asan     # + ASan build of flow/core tests
#   tools/run_tier1.sh --ubsan    # + UBSan build of flow/core tests
#   tools/run_tier1.sh --sanitize # both sanitizers
#
# Run from anywhere; paths resolve relative to the repo root.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"

# The tests that exercise the thread pool, the stage runner, and the
# chunked folding path — the ones worth the sanitizer rebuild.
SAN_TESTS="threadpool_test|dataset_test|pipeline_test|pipeline_property_test|pipeline_chunked_test|cleaning_test|extractor_test|inventory_test"

run_asan=0
run_ubsan=0
for arg in "$@"; do
  case "$arg" in
    --asan) run_asan=1 ;;
    --ubsan) run_ubsan=1 ;;
    --sanitize) run_asan=1; run_ubsan=1 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier-1: RelWithDebInfo build + full ctest =="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$JOBS"
(cd "$ROOT/build" && ctest --output-on-failure -j "$JOBS")

sanitizer_pass() {
  local preset="$1"
  echo "== sanitizer pass: $preset (flow + core tests) =="
  cmake --preset "$preset" -S "$ROOT"
  # Build only the targeted tests: the sanitizer rebuild is slow and the
  # goal is the concurrency/memory paths, not the whole binary set.
  local targets
  targets="$(echo "$SAN_TESTS" | tr '|' ' ')"
  # shellcheck disable=SC2086
  cmake --build "$ROOT/build-$preset" -j "$JOBS" --target $targets
  (cd "$ROOT/build-$preset" && ctest --output-on-failure -j "$JOBS" -R "^($SAN_TESTS)\$")
}

[ "$run_asan" -eq 1 ] && sanitizer_pass asan
[ "$run_ubsan" -eq 1 ] && sanitizer_pass ubsan

echo "== run_tier1.sh: all requested passes green =="
