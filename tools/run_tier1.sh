#!/usr/bin/env bash
# Tier-1 verification plus the correctness tooling passes: sanitizers
# over the concurrency-heavy flow/core tests, the project linter, and a
# format check for touched files.
#
#   tools/run_tier1.sh            # tier-1: configure, build, ctest
#   tools/run_tier1.sh --asan     # + ASan build of flow/core tests
#   tools/run_tier1.sh --ubsan    # + UBSan build of flow/core tests
#   tools/run_tier1.sh --tsan     # + TSan build of flow/core tests
#   tools/run_tier1.sh --sanitize # all three sanitizers
#   tools/run_tier1.sh --faults   # + fail-points build, fault-injection suite
#   tools/run_tier1.sh --lint     # + pollint over the tree (implies --deps)
#   tools/run_tier1.sh --deps     # + pollint --project layer/cycle analysis
#   tools/run_tier1.sh --analyze  # + Clang -Wthread-safety build (needs clang++)
#   tools/run_tier1.sh --tidy     # + clang-tidy over src/ (needs clang-tidy)
#   tools/run_tier1.sh --format   # + clang-format check of touched files
#   tools/run_tier1.sh --obs      # + obs tests, POL_OBS=OFF build, overhead bench
#   tools/run_tier1.sh --soak     # + serving chaos soak under TSan and fail points
#   tools/run_tier1.sh --store    # + snapshot-store suites (ASan + fail points),
#                                 #   cold-start bench vs LoadFromFile+Seal
#
# Flags combine; plain tier-1 runtime is unchanged when none are given.
# Passes needing Clang tooling (--analyze, --tidy, --format) skip with a
# notice when the binary is not installed, so the script stays green on
# GCC-only machines. Run from anywhere; paths resolve relative to the
# repo root.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"

# The tests that exercise the thread pool, the stage runner, and the
# chunked folding path — the ones worth the sanitizer rebuild. The
# stress tests exist specifically to give TSan interleavings to bite on.
SAN_TESTS="threadpool_test|dataset_test|concurrency_stress_test|pipeline_test|pipeline_property_test|pipeline_chunked_test|cleaning_test|extractor_test|inventory_test|serving_inventory_test|serving_resilience_test|window_test"

# The failure-containment suite: these run in every build, but only the
# faults preset (POL_FAILPOINTS=ON) un-skips the armed kill-and-resume
# scenarios.
FAULT_TESTS="failpoint_test|nmea_quarantine_test|checkpoint_test|fault_injection_test|concurrency_stress_test|status_test|serving_resilience_test|snapshot_fuzz_test"

# The durable snapshot-store suites: container format, generation
# directory, codec equivalence, format-hostility fuzz, and the
# cold-start/publish wiring. --store runs them under ASan (mmap'd
# pointer arithmetic) and the fail-points preset (torn publish, forced
# open failures), then holds the cold-start bench to its >=10x bar.
STORE_TESTS="snapshot_format_test|snapshot_store_test|snapshot_codec_test|snapshot_fuzz_test|serving_store_test"

# The serving chaos soak: concurrent readers + faulting refreshes +
# deadline storms against the ServingGuard. --soak runs it under both
# the TSan and the fail-points presets (the two builds where it bites).
SOAK_TESTS="serving_resilience_test|serving_inventory_test"

# The observability suite: the obs unit tests, the report/trace
# integration test, and the concurrency stress test that hammers the
# registry. The same set must pass with the layer compiled to no-ops.
OBS_TESTS="json_test|metrics_test|trace_test|run_report_test|logging_test|concurrency_stress_test|window_test|querylog_test|slo_test|openmetrics_test|serving_telemetry_test"

run_asan=0
run_ubsan=0
run_tsan=0
run_faults=0
run_lint=0
run_deps=0
run_analyze=0
run_tidy=0
run_format=0
run_obs=0
run_soak=0
run_store=0
for arg in "$@"; do
  case "$arg" in
    --asan) run_asan=1 ;;
    --ubsan) run_ubsan=1 ;;
    --tsan) run_tsan=1 ;;
    --sanitize) run_asan=1; run_ubsan=1; run_tsan=1 ;;
    --faults) run_faults=1 ;;
    --lint) run_lint=1; run_deps=1 ;;  # Lint always checks the layer DAG too.
    --deps) run_deps=1 ;;
    --analyze) run_analyze=1 ;;
    --tidy) run_tidy=1 ;;
    --format) run_format=1 ;;
    --obs) run_obs=1 ;;
    --soak) run_soak=1 ;;
    --store) run_store=1 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier-1: RelWithDebInfo build + full ctest =="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$JOBS"
(cd "$ROOT/build" && ctest --output-on-failure -j "$JOBS")

sanitizer_pass() {
  local preset="$1"
  echo "== sanitizer pass: $preset (flow + core tests) =="
  cmake --preset "$preset" -S "$ROOT"
  # Build only the targeted tests: the sanitizer rebuild is slow and the
  # goal is the concurrency/memory paths, not the whole binary set.
  local targets
  targets="$(echo "$SAN_TESTS" | tr '|' ' ')"
  # shellcheck disable=SC2086
  cmake --build "$ROOT/build-$preset" -j "$JOBS" --target $targets
  (cd "$ROOT/build-$preset" &&
     TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
     ctest --output-on-failure -j "$JOBS" -R "^($SAN_TESTS)\$")
}

faults_pass() {
  echo "== faults pass: POL_FAILPOINTS build + fault-injection suite =="
  cmake --preset faults -S "$ROOT"
  local targets
  targets="$(echo "$FAULT_TESTS" | tr '|' ' ')"
  # shellcheck disable=SC2086
  cmake --build "$ROOT/build-faults" -j "$JOBS" --target $targets
  (cd "$ROOT/build-faults" &&
     ctest --output-on-failure -j "$JOBS" -R "^($FAULT_TESTS)\$")
}

lint_pass() {
  echo "== lint pass: pollint over src/ bench/ examples/ tools/ =="
  # One process for the whole tree; pollint batches every path itself.
  cmake --build "$ROOT/build" -j "$JOBS" --target pollint
  "$ROOT/build/tools/pollint" --root "$ROOT"
  echo "pollint: clean"
}

deps_pass() {
  echo "== deps pass: pollint --project layer DAG + include cycles =="
  cmake --build "$ROOT/build" -j "$JOBS" --target pollint
  "$ROOT/build/tools/pollint" --root "$ROOT" --project src tools
  echo "poldeps: clean"
}

analyze_pass() {
  echo "== analyze pass: Clang -Wthread-safety over the annotated tree =="
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "clang++ not installed; skipping analyze pass" >&2
    return 0
  fi
  cmake --preset analyze -S "$ROOT"
  cmake --build "$ROOT/build-analyze" -j "$JOBS"
  echo "analyze: clean"
}

tidy_pass() {
  echo "== tidy pass: clang-tidy (.clang-tidy: bugprone + concurrency) =="
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "clang-tidy not installed; skipping tidy pass" >&2
    return 0
  fi
  cmake -B "$ROOT/build" -S "$ROOT" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  local files
  files="$(git -C "$ROOT" ls-files 'src/**/*.cc')"
  # shellcheck disable=SC2086
  (cd "$ROOT" && clang-tidy -p build --quiet $files)
  echo "tidy: clean"
}

obs_pass() {
  echo "== obs pass: observability tests, POL_OBS=OFF build, overhead bench =="
  local targets
  targets="$(echo "$OBS_TESTS" | tr '|' ' ')"
  # shellcheck disable=SC2086
  cmake --build "$ROOT/build" -j "$JOBS" --target $targets \
    bench_obs_overhead bench_serving_telemetry
  (cd "$ROOT/build" && ctest --output-on-failure -j "$JOBS" -R "^($OBS_TESTS)\$")
  # The layer must compile to no-ops and the same suite must still pass.
  cmake -B "$ROOT/build-noobs" -S "$ROOT" -DPOL_OBS=OFF
  # shellcheck disable=SC2086
  cmake --build "$ROOT/build-noobs" -j "$JOBS" --target $targets
  (cd "$ROOT/build-noobs" &&
     ctest --output-on-failure -j "$JOBS" -R "^($OBS_TESTS)\$")
  # Overhead bar: instrumentation on (idle recorder) within 2% of a
  # trace-recording run; the bench exits non-zero past the threshold.
  "$ROOT/build/bench/bench_obs_overhead"
  # Same bar for the query-path telemetry: windowed histograms, the
  # query log, and SLO gauges must stay under 2% on the read path.
  "$ROOT/build/bench/bench_serving_telemetry"
  echo "obs: clean"
}

soak_pass() {
  echo "== soak pass: serving resilience under TSan and fail points =="
  local targets
  targets="$(echo "$SOAK_TESTS" | tr '|' ' ')"
  local preset
  for preset in tsan faults; do
    cmake --preset "$preset" -S "$ROOT"
    # shellcheck disable=SC2086
    cmake --build "$ROOT/build-$preset" -j "$JOBS" --target $targets
    (cd "$ROOT/build-$preset" &&
       TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
       ctest --output-on-failure -j "$JOBS" -R "^($SOAK_TESTS)\$")
  done
  echo "soak: clean"
}

store_pass() {
  echo "== store pass: snapshot-store suites under ASan and fail points =="
  local targets
  targets="$(echo "$STORE_TESTS" | tr '|' ' ')"
  local preset
  for preset in asan faults; do
    cmake --preset "$preset" -S "$ROOT"
    # shellcheck disable=SC2086
    cmake --build "$ROOT/build-$preset" -j "$JOBS" --target $targets
    (cd "$ROOT/build-$preset" &&
       ctest --output-on-failure -j "$JOBS" -R "^($STORE_TESTS)\$")
  done
  # Cold-start bar: mmap OpenLatest must beat LoadFromFile + Seal by
  # >=10x; the bench exits non-zero below the threshold and writes the
  # machine-readable comparison next to the other BENCH_* reports.
  cmake --build "$ROOT/build" -j "$JOBS" --target bench_snapshot_store
  "$ROOT/build/bench/bench_snapshot_store" \
    --report-out="$ROOT/BENCH_snapshot_store.json"
  echo "store: clean"
}

format_pass() {
  echo "== format pass: clang-format on files touched vs origin =="
  if ! command -v clang-format >/dev/null 2>&1; then
    echo "clang-format not installed; skipping format pass" >&2
    return 0
  fi
  # Only verify new/touched files — the tree is not wholesale-formatted.
  local base
  base="$(git -C "$ROOT" merge-base HEAD origin/main 2>/dev/null ||
          git -C "$ROOT" rev-parse 'HEAD~1' 2>/dev/null || echo '')"
  local files
  files="$( (git -C "$ROOT" diff --name-only ${base:+"$base"} --;
             git -C "$ROOT" diff --name-only --cached;
             git -C "$ROOT" ls-files --others --exclude-standard) |
           sort -u | grep -E '\.(h|cc|cpp)$' || true)"
  if [ -z "$files" ]; then
    echo "no touched C++ files; nothing to check"
    return 0
  fi
  # One clang-format invocation for the whole batch, not a per-file
  # loop; the tool prints each offending file itself.
  local existing=""
  for f in $files; do
    [ -f "$ROOT/$f" ] && existing="$existing $ROOT/$f"
  done
  if [ -z "$existing" ]; then
    echo "no touched C++ files; nothing to check"
    return 0
  fi
  # shellcheck disable=SC2086
  clang-format --dry-run -Werror $existing ||
    { echo "format pass failed" >&2; return 1; }
  echo "format: clean"
}

[ "$run_asan" -eq 1 ] && sanitizer_pass asan
[ "$run_ubsan" -eq 1 ] && sanitizer_pass ubsan
[ "$run_tsan" -eq 1 ] && sanitizer_pass tsan
[ "$run_faults" -eq 1 ] && faults_pass
[ "$run_lint" -eq 1 ] && lint_pass
[ "$run_deps" -eq 1 ] && deps_pass
[ "$run_analyze" -eq 1 ] && analyze_pass
[ "$run_tidy" -eq 1 ] && tidy_pass
[ "$run_format" -eq 1 ] && format_pass
[ "$run_obs" -eq 1 ] && obs_pass
[ "$run_soak" -eq 1 ] && soak_pass
[ "$run_store" -eq 1 ] && store_pass

echo "== run_tier1.sh: all requested passes green =="
